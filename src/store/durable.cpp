#include "store/durable.hpp"

#include <chrono>
#include <vector>

#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "store/snapshot.hpp"
#include "support/contracts.hpp"
#include "support/varint.hpp"

namespace syncon {

namespace {

// WAL record kinds. kEvent is the DurableSystem journal; the rest are the
// DurableMonitor's. A store only ever holds one shell's records.
constexpr std::uint8_t kEvent = 1;
constexpr std::uint8_t kBegin = 2;
constexpr std::uint8_t kComplete = 3;
constexpr std::uint8_t kReport = 4;  // empty label = observe()
constexpr std::uint8_t kMonCheckpoint = 5;
constexpr std::uint8_t kAdopt = 6;
constexpr std::uint8_t kForget = 7;

class RecoveryTimer {
 public:
  explicit RecoveryTimer(RecoveryStats& stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~RecoveryTimer() {
    stats_.recovery_micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if (obs::enabled()) {
      auto& registry = obs::MetricRegistry::global();
      registry.gauge("syncon_store_recovery_us")
          .set(static_cast<std::int64_t>(stats_.recovery_micros));
      static obs::Counter& replayed =
          registry.counter("syncon_store_replayed_records_total");
      replayed.add(stats_.events_replayed);
    }
    if (stats_.recovered) {
      // Attribute the replay time as a detection-latency stage (verdicts
      // that waited on this recovery paid it), note the recovery in the
      // flight ring, and flush the ring so the incident is on disk.
      obs::record_stage_latency("wal_replay", stats_.recovery_micros);
      obs::flight(obs::FlightKind::kRecovery, obs::FlightRecord::kNoProcess,
                  stats_.events_replayed, stats_.recovery_micros);
      obs::flight_auto_dump("recovery");
    }
  }

 private:
  RecoveryStats& stats_;
  std::chrono::steady_clock::time_point start_;
};

std::string decode_label(std::span<const std::uint8_t>& in) {
  const std::size_t length = static_cast<std::size_t>(decode_varint(in));
  SYNCON_REQUIRE(length <= in.size(), "label runs past the WAL record");
  std::string label(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(length));
  in = in.subspan(length);
  return label;
}

void encode_label(const std::string& label, std::vector<std::uint8_t>& out) {
  encode_varint(label.size(), out);
  out.insert(out.end(), label.begin(), label.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// DurableSystem
// ---------------------------------------------------------------------------

DurableSystem::DurableSystem(std::size_t process_count,
                             StorageBackend& storage, DurabilityPolicy policy)
    : system_(process_count),
      store_(storage, policy),
      encoder_(process_count, policy.full_interval) {
  RecoveryTimer timer(stats_);
  const std::vector<Store::RecoveredRecord> records = store_.take_records();
  stats_.recovered = store_.recovery().snapshot.has_value() ||
                     store_.recovery().segments_scanned > 0;
  if (store_.recovery().snapshot.has_value()) {
    const SnapshotImage& image = *store_.recovery().snapshot;
    SYNCON_REQUIRE(image.process_count == process_count,
                   "snapshot covers " + std::to_string(image.process_count) +
                       " processes, this system has " +
                       std::to_string(process_count));
    system_.restore_checkpoint(image.checkpoint);
  }
  LinkDecoder decoder(process_count);
  std::uint64_t segment = std::numeric_limits<std::uint64_t>::max();
  for (const Store::RecoveredRecord& record : records) {
    if (record.segment != segment) {
      // Writers reset their encoder at segment boundaries, so every
      // segment's first frame is absolute and decodes stateless.
      decoder.reset();
      segment = record.segment;
    }
    try {
      std::span<const std::uint8_t> in = record.body;
      SYNCON_REQUIRE(!in.empty() && in.front() == kEvent,
                     "not a system WAL record");
      in = in.subspan(1);
      WireMessage wire;
      SYNCON_REQUIRE(decoder.try_decode(in, wire),
                     "undecodable journaled wire frame");
      const std::size_t nsources =
          static_cast<std::size_t>(decode_varint(in));
      std::vector<EventId> sources;
      sources.reserve(nsources);
      for (std::size_t i = 0; i < nsources; ++i) {
        EventId src;
        src.process = static_cast<ProcessId>(decode_varint(in));
        src.index = static_cast<EventIndex>(decode_varint(in));
        sources.push_back(src);
      }
      const std::int64_t time = decode_signed_varint(in);
      SYNCON_REQUIRE(in.empty(), "trailing bytes in WAL record");
      if (system_.restore_event(wire.source, wire.clock, sources, time)) {
        ++stats_.events_replayed;
      } else {
        ++stats_.events_skipped;
      }
    } catch (const ContractViolation&) {
      // CRC-valid but unusable (format drift, a frame chained onto state a
      // quarantined predecessor should have advanced): skip, keep serving.
      ++stats_.records_quarantined;
    }
  }
}

void DurableSystem::journal_event(EventId e) {
  const std::uint64_t seg = store_.open_segment_seq();
  if (seg != encoder_segment_) {
    encoder_.reset();  // first frame of a segment must be absolute
    encoder_segment_ = seg;
  }
  std::vector<std::uint8_t> body;
  body.push_back(kEvent);
  encoder_.encode(WireMessage{e, system_.clock_of(e)}, body);
  const std::span<const EventId> sources = system_.sources_of(e);
  encode_varint(sources.size(), body);
  std::vector<EventId> touches;
  touches.reserve(sources.size() + 1);
  touches.push_back(e);
  for (const EventId& src : sources) {
    encode_varint(src.process, body);
    encode_varint(src.index, body);
    touches.push_back(src);
  }
  encode_signed_varint(system_.time_of(e), body);
  store_.append(body, touches);
}

EventId DurableSystem::local(ProcessId p, std::int64_t when) {
  const EventId e = system_.local(p, when);
  journal_event(e);
  return e;
}

WireMessage DurableSystem::send(ProcessId p, std::int64_t when) {
  const WireMessage wire = system_.send(p, when);
  journal_event(wire.source);
  return wire;
}

EventId DurableSystem::deliver(ProcessId p, const WireMessage& message,
                               std::int64_t when) {
  const EventIndex before = system_.executed(p);
  const EventId e = system_.deliver(p, message, when);
  // Suppressed duplicates execute nothing and need no journal entry — the
  // receive that consumed the source was journaled when it executed.
  if (system_.executed(p) != before) journal_event(e);
  return e;
}

EventId DurableSystem::deliver_all(ProcessId p,
                                   std::span<const WireMessage> messages,
                                   std::int64_t when) {
  const EventIndex before = system_.executed(p);
  const EventId e = system_.deliver_all(p, messages, when);
  if (system_.executed(p) != before) journal_event(e);
  return e;
}

bool DurableSystem::try_deliver(ProcessId p, const WireMessage& message,
                                std::int64_t when, EventId* receipt) {
  const EventIndex before = p < process_count() ? system_.executed(p) : 0;
  EventId r{};
  if (!system_.try_deliver(p, message, when, &r)) return false;
  if (system_.executed(p) != before) journal_event(r);
  if (receipt != nullptr) *receipt = r;
  return true;
}

std::size_t DurableSystem::compact(const VectorClock& watermark) {
  const std::size_t reclaimed = system_.compact(watermark);
  ++compactions_;
  if (compactions_ % store_.policy().snapshot_every == 0) snapshot_now();
  return reclaimed;
}

void DurableSystem::snapshot_now() {
  store_.write_snapshot(
      SnapshotImage{process_count(), system_.checkpoint()});
}

// ---------------------------------------------------------------------------
// DurableMonitor
// ---------------------------------------------------------------------------

DurableMonitor::DurableMonitor(std::size_t process_count,
                               StorageBackend& storage,
                               DurabilityPolicy policy)
    : process_count_(process_count),
      monitor_(process_count),
      store_(storage, policy),
      encoder_(process_count, policy.full_interval) {
  RecoveryTimer timer(stats_);
  const std::vector<Store::RecoveredRecord> records = store_.take_records();
  stats_.recovered = store_.recovery().snapshot.has_value() ||
                     store_.recovery().segments_scanned > 0;
  // The monitor's snapshot files only advance the store's durable cut (so
  // observe-only segments can be pruned); monitor state itself is rebuilt
  // purely by replaying the journal in order — a checkpoint adoption must
  // act at its original position, not before records that preceded it.
  LinkDecoder decoder(process_count);
  std::uint64_t segment = std::numeric_limits<std::uint64_t>::max();
  for (const Store::RecoveredRecord& record : records) {
    if (record.segment != segment) {
      decoder.reset();
      segment = record.segment;
    }
    try {
      std::span<const std::uint8_t> in = record.body;
      SYNCON_REQUIRE(!in.empty(), "empty WAL record");
      const std::uint8_t kind = in.front();
      in = in.subspan(1);
      switch (kind) {
        case kBegin: {
          monitor_.begin(decode_label(in));
          ++stats_.events_replayed;
          break;
        }
        case kComplete: {
          monitor_.complete(decode_label(in));
          ++stats_.events_replayed;
          break;
        }
        case kForget: {
          monitor_.forget(decode_label(in));
          ++stats_.events_replayed;
          break;
        }
        case kReport: {
          const std::string label = decode_label(in);
          const std::int64_t when = decode_signed_varint(in);
          WireMessage report;
          SYNCON_REQUIRE(decoder.try_decode(in, report),
                         "undecodable journaled report frame");
          const bool fresh = label.empty()
                                 ? monitor_.observe(report)
                                 : monitor_.ingest(label, report, when);
          (fresh ? stats_.events_replayed : stats_.events_skipped) += 1;
          break;
        }
        case kMonCheckpoint: {
          monitor_.checkpoint(VectorClock::decode(in));
          ++stats_.events_replayed;
          break;
        }
        case kAdopt: {
          monitor_.adopt_checkpoint(decode_checkpoint(in));
          ++stats_.events_replayed;
          break;
        }
        default:
          SYNCON_REQUIRE(false, "unknown monitor WAL record kind");
      }
    } catch (const ContractViolation&) {
      ++stats_.records_quarantined;
    }
  }
}

void DurableMonitor::journal(std::uint8_t kind,
                             std::span<const std::uint8_t> body,
                             std::span<const EventId> touches, bool pinned) {
  std::vector<std::uint8_t> record;
  record.reserve(body.size() + 1);
  record.push_back(kind);
  record.insert(record.end(), body.begin(), body.end());
  store_.append(record, touches, pinned);
}

void DurableMonitor::journal_report(const std::string& label,
                                    const WireMessage& report,
                                    std::int64_t when) {
  const std::uint64_t seg = store_.open_segment_seq();
  if (seg != encoder_segment_) {
    encoder_.reset();  // first frame of a segment must be absolute
    encoder_segment_ = seg;
  }
  std::vector<std::uint8_t> body;
  body.push_back(kReport);
  encode_label(label, body);
  encode_signed_varint(when, body);
  encoder_.encode(report, body);
  const EventId touches[] = {report.source};
  // Labeled reports are pinned: they rebuild action summaries at replay and
  // cannot be re-derived from a checkpoint. Plain observations can — the
  // adopted cut forgives them — so they stay prunable.
  store_.append(body, touches, /*pinned=*/!label.empty());
}

void DurableMonitor::begin(const std::string& label) {
  monitor_.begin(label);
  std::vector<std::uint8_t> body;
  encode_label(label, body);
  journal(kBegin, body, {}, /*pinned=*/true);
}

const IntervalSummary& DurableMonitor::complete(const std::string& label) {
  const IntervalSummary& summary = monitor_.complete(label);
  std::vector<std::uint8_t> body;
  encode_label(label, body);
  journal(kComplete, body, {}, /*pinned=*/true);
  return summary;
}

bool DurableMonitor::observe(const WireMessage& report) {
  const bool fresh = monitor_.observe(report);
  if (fresh) journal_report("", report, OnlineSystem::kNoTime);
  return fresh;
}

bool DurableMonitor::ingest(const std::string& label,
                            const WireMessage& report, std::int64_t when) {
  const bool fresh = monitor_.ingest(label, report, when);
  if (fresh) journal_report(label, report, when);
  return fresh;
}

bool DurableMonitor::try_observe(const WireMessage& report) {
  const bool fresh = monitor_.try_observe(report);
  if (fresh) journal_report("", report, OnlineSystem::kNoTime);
  return fresh;
}

bool DurableMonitor::try_ingest(const std::string& label,
                                const WireMessage& report, std::int64_t when) {
  const bool fresh = monitor_.try_ingest(label, report, when);
  if (fresh) journal_report(label, report, when);
  return fresh;
}

void DurableMonitor::checkpoint(const VectorClock& snapshot) {
  monitor_.checkpoint(snapshot);
  std::vector<std::uint8_t> body;
  snapshot.encode(body);
  journal(kMonCheckpoint, body, {}, /*pinned=*/true);
}

void DurableMonitor::adopt_checkpoint(const RetentionCheckpoint& checkpoint) {
  monitor_.adopt_checkpoint(checkpoint);
  std::vector<std::uint8_t> body;
  encode_checkpoint(checkpoint, body);
  journal(kAdopt, body, {}, /*pinned=*/true);
  if (++adoptions_ % store_.policy().snapshot_every == 0) {
    store_.write_snapshot(SnapshotImage{process_count_, checkpoint});
  }
}

void DurableMonitor::forget(const std::string& label) {
  monitor_.forget(label);
  std::vector<std::uint8_t> body;
  encode_label(label, body);
  journal(kForget, body, {}, /*pinned=*/true);
}

}  // namespace syncon
