// Durable snapshot serialization (DESIGN.md §3.12): what survives of an
// OnlineSystem besides its WAL tail is exactly the RetentionCheckpoint —
// the compaction cut plus the per-process surface clocks/times (the "state
// below the cut", Lemma 16's recovery point). A snapshot file is a magic
// header followed by one CRC-framed payload, so a torn or bit-flipped
// snapshot is rejected as a whole and recovery falls back to the previous
// one (or the bottom checkpoint).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cuts/watermark.hpp"

namespace syncon {

struct SnapshotImage {
  std::size_t process_count = 0;
  RetentionCheckpoint checkpoint;
};

/// Appends the checkpoint's wire form (also the payload of a monitor's
/// checkpoint-adoption WAL record — store/durable.hpp).
void encode_checkpoint(const RetentionCheckpoint& checkpoint,
                       std::vector<std::uint8_t>& out);

/// Consumes one encoded checkpoint; throws ContractViolation on malformed
/// input (the callers translate that into rejection).
RetentionCheckpoint decode_checkpoint(std::span<const std::uint8_t>& in);

/// Serializes the image: magic, then one CRC frame (store/wal.hpp).
std::vector<std::uint8_t> encode_snapshot(const SnapshotImage& image);

/// Decodes a snapshot file; nullopt on bad magic, truncation, CRC mismatch
/// or malformed payload — the caller falls back to an older snapshot.
std::optional<SnapshotImage> decode_snapshot(
    std::span<const std::uint8_t> bytes);

}  // namespace syncon
