#include "store/snapshot.hpp"

#include <algorithm>

#include "store/wal.hpp"
#include "support/contracts.hpp"
#include "support/varint.hpp"

namespace syncon {

namespace {

// "SYsnap" + format version byte. Bump the version on layout changes.
constexpr std::uint8_t kMagic[] = {'S', 'Y', 's', 'n', 'a', 'p', 1};

}  // namespace

void encode_checkpoint(const RetentionCheckpoint& checkpoint,
                       std::vector<std::uint8_t>& out) {
  const std::size_t n = checkpoint.cut.size();
  SYNCON_REQUIRE(n > 0 && checkpoint.surface_clocks.size() == n &&
                     checkpoint.surface_times.size() == n,
                 "checkpoint components disagree on the process count");
  encode_varint(n, out);
  checkpoint.cut.encode(out);
  for (std::size_t p = 0; p < n; ++p) {
    checkpoint.surface_clocks[p].encode(out);
    encode_signed_varint(checkpoint.surface_times[p], out);
  }
  encode_varint(checkpoint.sequence, out);
  encode_varint(checkpoint.reclaimed_total, out);
}

RetentionCheckpoint decode_checkpoint(std::span<const std::uint8_t>& in) {
  RetentionCheckpoint checkpoint;
  const std::size_t n = static_cast<std::size_t>(decode_varint(in));
  SYNCON_REQUIRE(n > 0, "checkpoint of an empty system");
  checkpoint.cut = VectorClock::decode(in);
  SYNCON_REQUIRE(checkpoint.cut.size() == n,
                 "checkpoint cut size does not match its process count");
  for (std::size_t p = 0; p < n; ++p) {
    checkpoint.surface_clocks.push_back(VectorClock::decode(in));
    SYNCON_REQUIRE(checkpoint.surface_clocks.back().size() == n,
                   "surface clock size does not match the process count");
    checkpoint.surface_times.push_back(decode_signed_varint(in));
  }
  checkpoint.sequence = decode_varint(in);
  checkpoint.reclaimed_total = decode_varint(in);
  return checkpoint;
}

std::vector<std::uint8_t> encode_snapshot(const SnapshotImage& image) {
  SYNCON_REQUIRE(image.process_count > 0, "snapshot of an empty system");
  SYNCON_REQUIRE(image.checkpoint.cut.size() == image.process_count,
                 "snapshot checkpoint does not match its process count");
  std::vector<std::uint8_t> payload;
  encode_checkpoint(image.checkpoint, payload);

  std::vector<std::uint8_t> out(std::begin(kMagic), std::end(kMagic));
  append_frame(payload, out);
  return out;
}

std::optional<SnapshotImage> decode_snapshot(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof kMagic ||
      !std::equal(std::begin(kMagic), std::end(kMagic), bytes.begin())) {
    return std::nullopt;
  }
  FrameReader reader(bytes.subspan(sizeof kMagic));
  const auto frame = reader.next();
  if (!frame) return std::nullopt;
  try {
    std::span<const std::uint8_t> in = *frame;
    SnapshotImage image;
    image.checkpoint = decode_checkpoint(in);
    image.process_count = image.checkpoint.cut.size();
    if (!in.empty()) return std::nullopt;  // trailing bytes: wrong layout
    return image;
  } catch (const ContractViolation&) {
    return std::nullopt;  // malformed payload inside a CRC-valid frame
  }
}

}  // namespace syncon
