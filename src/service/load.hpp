// Multi-tenant load generator for the monitoring daemon: a sliding window
// of tenants, each a deterministic TenantScript, encoded through the wire
// codec and pushed into a MonitorDaemon with retry-on-backpressure. When a
// tenant's last frame has been pumped, its daemon-side Definite verdict log
// is compared bit-for-bit against the script's standalone reference — the
// service's headline identity guarantee, checked for every tenant, at any
// scale the config asks for.
#pragma once

#include <cstdint>
#include <functional>

#include "service/daemon.hpp"
#include "sim/soak.hpp"

namespace syncon::service {

struct ServiceLoadConfig {
  std::size_t tenants = 100;
  /// Tenants in flight at once (bounds generator memory, not the daemon's).
  std::size_t window = 64;
  /// Frames submitted per active tenant per round; rejected frames are
  /// retried next round without advancing that tenant (FIFO preserved).
  std::size_t batch = 8;
  /// Per-tenant workload shape; the seed is re-derived per tenant.
  TenantWorkload workload;
  std::uint64_t seed = 1;
  /// Compare every finished tenant's daemon verdicts to its reference.
  bool check_identity = true;
  /// Drop a tenant's daemon session once it finished and passed the
  /// identity check (long runs would otherwise hold every session forever).
  bool release_finished = false;
  /// End-of-round hook (serve scrapes, publish metrics). The round count
  /// is monotone across the whole run.
  std::function<void(std::uint64_t round)> on_round;
};

struct ServiceLoadResult {
  std::uint64_t tenants_run = 0;
  std::uint64_t total_events = 0;   ///< authoritative events, all tenants
  std::uint64_t total_ops = 0;      ///< ops encoded + submitted
  std::uint64_t total_frames = 0;   ///< frames submitted (ops + hellos)
  std::uint64_t rounds = 0;
  std::uint64_t verdicts_total = 0;
  std::uint64_t identity_mismatches = 0;
  bool identity_ok = true;
  /// Daemon counters at the end of the run.
  DaemonStats daemon;
};

/// Drives `daemon` with `config.tenants` scripted tenants. Deterministic
/// given (config, daemon options) up to ingest-latency telemetry.
ServiceLoadResult run_service_load(const ServiceLoadConfig& config,
                                   MonitorDaemon& daemon);

}  // namespace syncon::service
