// Tenant-tagged binary framing for the monitoring daemon (DESIGN.md §3.15).
//
// Every frame is one envelope on a byte stream:
//
//   envelope := varint(payload_len) payload crc32(payload):u32le
//   payload  := kind:u8 varint(tenant) varint(seq) body
//
// — the WAL's length-prefix + CRC discipline lifted onto the wire, so a
// torn or bit-flipped frame is detected before any session state is
// touched. `seq` is a single per-tenant counter across every frame of that
// tenant (the hello is seq 0): a frame spliced out of another position —
// replayed, reordered, or cut from a different tenant's stream — fails the
// session's sequence guard *before* its body is decoded, so it can corrupt
// neither this tenant's delta-codec state nor any other tenant's.
//
// Bodies reuse the PR 6 link codec: the journal (kEvent) and report
// (kReport) streams are each one FIFO LinkEncoder/LinkDecoder pair per
// tenant, shipping clocks as chained deltas with periodic absolute escapes.
// Checkpoint clocks are absolute (they are rare and must stand alone).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "online/wire_codec.hpp"
#include "sim/soak.hpp"

namespace syncon::service {

enum class FrameKind : std::uint8_t {
  kHello = 1,  ///< opens a tenant session: varint(processes) varint(chunk)
  kBegin = 2,
  kWatch = 3,
  kComplete = 4,
  kForget = 5,
  kEvent = 6,
  kReport = 7,
  kCheckpoint = 8,
};

/// Result of scanning the head of a byte stream for one envelope.
enum class PeekStatus {
  kOk,        ///< a whole, CRC-clean frame with a parsable header
  kNeedMore,  ///< the buffer ends mid-envelope — feed more bytes
  kCorrupt,   ///< bad length, CRC mismatch, or garbled header
};

/// Parsed envelope + payload header; `body` aliases the input buffer.
struct FrameView {
  FrameKind kind = FrameKind::kHello;
  std::uint64_t tenant = 0;
  std::uint64_t seq = 0;
  std::span<const std::uint8_t> body;
  std::size_t frame_size = 0;  ///< envelope bytes consumed from the stream
};

/// Frames larger than this are rejected as corrupt — a garbled length
/// prefix must not make a reader buffer gigabytes waiting for "more".
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Stateless envelope scan of `in`'s head. On kOk fills `out`; otherwise
/// `out` is unspecified. Never throws, never consumes.
PeekStatus peek_frame(std::span<const std::uint8_t> in, FrameView& out);

/// Sender half: frames TenantOps onto per-tenant streams. encode_hello
/// must open each tenant before its first op (it fixes the process count
/// the link codecs are sized to).
class TenantFrameEncoder {
 public:
  explicit TenantFrameEncoder(std::uint32_t full_interval = 16);

  /// Appends tenant's hello envelope (always seq 0 — call once).
  void encode_hello(std::uint64_t tenant, std::size_t processes,
                    std::size_t resync_chunk, std::vector<std::uint8_t>& out);

  /// Appends one envelope for `op` on tenant's stream; returns its size.
  std::size_t encode_op(std::uint64_t tenant, const TenantOp& op,
                        std::vector<std::uint8_t>& out);

  /// Drops tenant's stream state (the tenant finished; a windowed load
  /// generator over many tenants must not accumulate dead codecs).
  void release(std::uint64_t tenant);

  std::size_t open_streams() const { return streams_.size(); }

 private:
  struct Stream {
    Stream(std::size_t processes, std::uint32_t full_interval)
        : journal(processes, full_interval),
          report(processes, full_interval) {}
    LinkEncoder journal;
    LinkEncoder report;
    std::uint64_t next_seq = 0;
  };

  Stream& stream_of(std::uint64_t tenant);

  std::uint32_t full_interval_;
  std::unordered_map<std::uint64_t, Stream> streams_;
};

/// Receiver half, one per tenant session: the two FIFO link decoders plus
/// the sequence guard. Lives next to the TenantSessionCore it feeds.
class TenantStreamDecoder {
 public:
  /// `hello_seq` is the seq of the hello frame that created the session
  /// (the guard expects hello_seq + 1 next).
  TenantStreamDecoder(std::size_t processes, std::uint64_t hello_seq);

  /// Decodes a CRC-clean frame's body into `op`. Returns false — leaving
  /// the link-codec state untouched — when the frame is out of sequence
  /// (spliced / replayed / a gap where a corrupt frame was dropped) or its
  /// body fails to parse; the caller quarantines it. A frame that passes
  /// the sequence guard consumes its stream position either way.
  bool decode(const FrameView& frame, TenantOp& op);

  std::uint64_t expected_seq() const { return expected_seq_; }

 private:
  LinkDecoder journal_;
  LinkDecoder report_;
  std::uint64_t expected_seq_;
};

/// Parses a hello frame's body. Returns false on malformed contents.
bool decode_hello(const FrameView& frame, std::size_t& processes,
                  std::size_t& resync_chunk);

}  // namespace syncon::service
