// The sharded multi-tenant monitoring daemon core (DESIGN.md §3.15): N
// independent tenant sessions — each a replica OnlineSystem + feed-only
// OnlineMonitor (TenantSessionCore) — hosted behind the tenant wire codec.
//
// Concurrency model: submit() runs on the owner thread and only routes —
// envelope validation, a bounded per-shard queue, optional journaling.
// pump() is a barrier: ThreadPool::parallel_for applies every queued frame,
// shard s owning exactly the tenants with tenant_id % shards == s, so one
// tenant's frames are always applied in order on one thread (delivery
// determinism survives the fan-out). Between pumps the sessions are
// quiescent and the owner may read stats, compact, or publish metrics.
//
// Backpressure: a full shard queue rejects the submit (Admission::accepted
// = false, retry after the next pump) instead of buffering unboundedly —
// the caller keeps FIFO by not advancing that tenant's cursor.
//
// Retention: with a global memory budget set, the owner compacts the
// laggiest sessions (largest live log first) at their monitors' retention
// pins after each pump until the budget holds — compaction never crosses
// what a resync or open action still needs, so verdicts are unaffected.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "service/tenant_codec.hpp"
#include "store/storage.hpp"
#include "support/thread_pool.hpp"

namespace syncon::service {

struct DaemonOptions {
  std::size_t shards = 8;
  /// Frames one shard queue holds before submits are rejected.
  std::size_t queue_capacity = 1024;
  /// Global cap on live log events across every session (0 = unbounded);
  /// enforced after each pump by compacting the laggiest sessions first.
  std::size_t memory_budget_events = 0;
  /// Per-tenant labeled gauges are published for at most this many tenants
  /// (the aggregate gauges always cover everyone).
  std::size_t per_tenant_metric_limit = 64;
  /// Optional durable frame journal: every admitted frame is appended to
  /// object "tenant-<id>" before it is applied, and recover() rebuilds all
  /// sessions by replaying those objects. The envelope doubles as the
  /// journal record format — it already carries the CRC framing.
  StorageBackend* journal = nullptr;
};

/// Outcome of one submit: rejected frames should be retried unchanged
/// after `retry_after_pumps` pump barriers (the queues drain every pump).
struct Admission {
  bool accepted = false;
  std::uint32_t retry_after_pumps = 0;
};

struct DaemonStats {
  std::size_t tenants = 0;
  std::uint64_t frames_applied = 0;
  /// Envelope-corrupt + unroutable + out-of-sequence + session-contract
  /// rejections, summed — every way a frame can fail without killing us.
  std::uint64_t frames_quarantined = 0;
  std::uint64_t rejected_submits = 0;
  std::uint64_t verdicts = 0;
  std::size_t live_log_events = 0;
  std::size_t live_log_peak = 0;
  std::uint64_t reclaimed_events = 0;
  std::uint64_t compactions = 0;
};

class MonitorDaemon {
 public:
  MonitorDaemon(const DaemonOptions& options, ThreadPool& pool);

  MonitorDaemon(const MonitorDaemon&) = delete;
  MonitorDaemon& operator=(const MonitorDaemon&) = delete;

  /// Routes one complete envelope (owner thread only). A corrupt envelope
  /// is swallowed and quarantined (accepted — retrying cannot help); a
  /// valid one is queued on its tenant's shard or rejected when that queue
  /// is full.
  Admission submit(std::span<const std::uint8_t> frame);

  /// Applies every queued frame across all shards (barrier), then enforces
  /// the memory budget. Owner thread only.
  void pump();

  /// Replays the journal into fresh sessions (construct-time crash
  /// recovery). Requires a journal and no frames submitted yet.
  void recover();

  /// Aggregate counters; call between pumps.
  DaemonStats stats() const;

  /// The hosted session, or nullptr — identity checks read verdicts here.
  const TenantSessionCore* session(std::uint64_t tenant) const;

  /// Definite verdict log of one tenant (empty for unknown tenants).
  std::vector<std::string> verdicts(std::uint64_t tenant) const;

  /// Drops a finished tenant's session (and its journal object, if any).
  void release(std::uint64_t tenant);

  /// Publishes aggregate + per-tenant gauges into MetricRegistry::global().
  void publish_metrics() const;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct QueuedFrame {
    std::vector<std::uint8_t> bytes;
    std::uint64_t enqueued_us = 0;  // 0 = latency tracking off
  };

  struct TenantSession {
    TenantSession(std::size_t processes, std::size_t resync_chunk,
                  std::uint64_t hello_seq)
        : core(processes, resync_chunk), decoder(processes, hello_seq) {}
    TenantSessionCore core;
    TenantStreamDecoder decoder;
    std::uint64_t frames = 0;
    std::uint64_t quarantined_frames = 0;
  };

  struct Shard {
    std::mutex mutex;
    std::vector<QueuedFrame> queue;  // guarded by mutex
    // Owned by this shard's worker during pump(), by the owner between
    // pumps (the parallel_for barrier is the handoff). std::map: stats and
    // budget scans see tenants in deterministic order.
    std::map<std::uint64_t, std::unique_ptr<TenantSession>> sessions;
    std::uint64_t frames_applied = 0;
    std::uint64_t quarantined = 0;
  };

  void apply_frame(Shard& shard, const QueuedFrame& frame);
  void enforce_memory_budget();
  const TenantSession* find_session(std::uint64_t tenant) const;
  static std::string journal_object(std::uint64_t tenant);

  DaemonOptions options_;
  ThreadPool& pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t rejected_submits_ = 0;
  std::uint64_t corrupt_submits_ = 0;
  std::size_t live_log_peak_ = 0;
  std::uint64_t reclaimed_events_ = 0;
  std::uint64_t compactions_ = 0;
  bool any_submitted_ = false;
};

}  // namespace syncon::service
