#include "service/daemon.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/contracts.hpp"

namespace syncon::service {

namespace {

/// Submit-to-applied latency of one frame, recorded on the applying
/// shard's thread. Only called with telemetry on.
void record_ingest_latency(std::uint64_t latency_us) {
  auto& registry = obs::MetricRegistry::global();
  static obs::Histogram& latency = registry.histogram(
      "syncon_service_ingest_latency_us",
      obs::HistogramSpec::exponential(1.0, 1048576.0));
  latency.record(static_cast<double>(latency_us), obs::current_thread_slot());
}

}  // namespace

MonitorDaemon::MonitorDaemon(const DaemonOptions& options, ThreadPool& pool)
    : options_(options), pool_(pool) {
  SYNCON_REQUIRE(options_.shards > 0, "the daemon needs at least one shard");
  SYNCON_REQUIRE(options_.queue_capacity > 0,
                 "shard queues need room for at least one frame");
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string MonitorDaemon::journal_object(std::uint64_t tenant) {
  return "tenant-" + std::to_string(tenant);
}

Admission MonitorDaemon::submit(std::span<const std::uint8_t> frame) {
  any_submitted_ = true;
  FrameView view;
  const PeekStatus status = peek_frame(frame, view);
  if (status != PeekStatus::kOk || view.frame_size != frame.size()) {
    // Torn or corrupt on arrival: retrying the same bytes cannot help, so
    // the frame is consumed (accepted) and counted, never applied.
    ++corrupt_submits_;
    return {true, 0};
  }

  Shard& shard = *shards_[view.tenant % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.queue.size() >= options_.queue_capacity) {
      ++rejected_submits_;
      return {false, 1};
    }
    QueuedFrame queued;
    queued.bytes.assign(frame.begin(), frame.end());
    if (obs::enabled()) queued.enqueued_us = obs::now_us();
    shard.queue.push_back(std::move(queued));
  }
  if (options_.journal != nullptr) {
    const std::string object = journal_object(view.tenant);
    options_.journal->append(object, frame);
    options_.journal->sync(object);
  }
  return {true, 0};
}

void MonitorDaemon::apply_frame(Shard& shard, const QueuedFrame& frame) {
  FrameView view;
  if (peek_frame(frame.bytes, view) != PeekStatus::kOk) {
    ++shard.quarantined;  // journal tail torn under us — skip, don't die
    return;
  }

  if (view.kind == FrameKind::kHello) {
    if (shard.sessions.count(view.tenant) != 0) return;  // idempotent replay
    std::size_t processes = 0, resync_chunk = 0;
    if (!decode_hello(view, processes, resync_chunk)) {
      ++shard.quarantined;
      return;
    }
    shard.sessions.emplace(view.tenant,
                           std::make_unique<TenantSession>(
                               processes, resync_chunk, view.seq));
    ++shard.frames_applied;
    return;
  }

  const auto it = shard.sessions.find(view.tenant);
  if (it == shard.sessions.end()) {
    ++shard.quarantined;  // frames before (or with a corrupted) hello
    return;
  }
  TenantSession& session = *it->second;
  TenantOp op;
  if (!session.decoder.decode(view, op)) {
    ++session.quarantined_frames;
    return;
  }
  session.core.apply(op);
  ++session.frames;
  ++shard.frames_applied;
  if (frame.enqueued_us != 0 && obs::enabled()) {
    record_ingest_latency(obs::now_us() - frame.enqueued_us);
  }
}

void MonitorDaemon::pump() {
  pool_.parallel_for(
      shards_.size(),
      [this](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          Shard& shard = *shards_[s];
          std::vector<QueuedFrame> batch;
          {
            std::lock_guard<std::mutex> lock(shard.mutex);
            batch.swap(shard.queue);
          }
          for (const QueuedFrame& frame : batch) apply_frame(shard, frame);
        }
      },
      shards_.size());
  enforce_memory_budget();
}

void MonitorDaemon::enforce_memory_budget() {
  struct Candidate {
    std::size_t live;
    std::uint64_t tenant;
    TenantSession* session;
  };
  std::vector<Candidate> candidates;
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& [tenant, session] : shard->sessions) {
      const std::size_t live = session->core.system().live_log_events();
      total += live;
      candidates.push_back({live, tenant, session.get()});
    }
  }
  live_log_peak_ = std::max(live_log_peak_, total);
  if (options_.memory_budget_events == 0 ||
      total <= options_.memory_budget_events) {
    return;
  }
  // Laggiest first; tenant id breaks ties so the compaction order — and
  // with it every downstream stat — is deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.live != b.live ? a.live > b.live : a.tenant < b.tenant;
            });
  for (const Candidate& candidate : candidates) {
    const std::size_t reclaimed = candidate.session->core.compact_at_pin();
    if (reclaimed > 0) {
      ++compactions_;
      reclaimed_events_ += reclaimed;
      total -= reclaimed;
    }
    if (total <= options_.memory_budget_events) break;
  }
  // Still over budget: every pin is as far along as it gets this pump —
  // the remainder is live state consumers genuinely still need.
}

void MonitorDaemon::recover() {
  SYNCON_REQUIRE(options_.journal != nullptr, "recover needs a journal");
  SYNCON_REQUIRE(!any_submitted_, "recover must precede any submit");
  for (const std::string& name : options_.journal->list()) {
    if (name.rfind("tenant-", 0) != 0) continue;
    const std::vector<std::uint8_t> bytes = options_.journal->read(name);
    std::span<const std::uint8_t> in = bytes;
    while (!in.empty()) {
      FrameView view;
      if (peek_frame(in, view) != PeekStatus::kOk) {
        ++corrupt_submits_;  // torn tail: replay stops at the last clean frame
        break;
      }
      Shard& shard = *shards_[view.tenant % shards_.size()];
      QueuedFrame frame;
      const std::span<const std::uint8_t> whole = in.first(view.frame_size);
      frame.bytes.assign(whole.begin(), whole.end());
      apply_frame(shard, frame);
      in = in.subspan(view.frame_size);
    }
  }
}

const MonitorDaemon::TenantSession* MonitorDaemon::find_session(
    std::uint64_t tenant) const {
  const Shard& shard = *shards_[tenant % shards_.size()];
  const auto it = shard.sessions.find(tenant);
  return it == shard.sessions.end() ? nullptr : it->second.get();
}

const TenantSessionCore* MonitorDaemon::session(std::uint64_t tenant) const {
  const TenantSession* s = find_session(tenant);
  return s == nullptr ? nullptr : &s->core;
}

std::vector<std::string> MonitorDaemon::verdicts(std::uint64_t tenant) const {
  const TenantSessionCore* core = session(tenant);
  return core == nullptr ? std::vector<std::string>{}
                         : core->definite_verdicts();
}

void MonitorDaemon::release(std::uint64_t tenant) {
  Shard& shard = *shards_[tenant % shards_.size()];
  shard.sessions.erase(tenant);
  if (options_.journal != nullptr) {
    const std::string object = journal_object(tenant);
    if (options_.journal->exists(object)) options_.journal->remove(object);
  }
}

DaemonStats MonitorDaemon::stats() const {
  DaemonStats stats;
  stats.rejected_submits = rejected_submits_;
  stats.frames_quarantined = corrupt_submits_;
  stats.live_log_peak = live_log_peak_;
  stats.reclaimed_events = reclaimed_events_;
  stats.compactions = compactions_;
  for (const auto& shard : shards_) {
    stats.frames_applied += shard->frames_applied;
    stats.frames_quarantined += shard->quarantined;
    for (const auto& [tenant, session] : shard->sessions) {
      (void)tenant;
      ++stats.tenants;
      stats.frames_quarantined +=
          session->quarantined_frames + session->core.quarantined();
      stats.verdicts += session->core.definite_verdicts().size();
      stats.live_log_events += session->core.system().live_log_events();
    }
  }
  stats.live_log_peak = std::max(stats.live_log_peak, stats.live_log_events);
  return stats;
}

void MonitorDaemon::publish_metrics() const {
  auto& registry = obs::MetricRegistry::global();
  const DaemonStats s = stats();
  const auto set = [&registry](const char* name, std::uint64_t v) {
    registry.gauge(name).set(static_cast<std::int64_t>(v));
  };
  set("syncon_service_tenants", s.tenants);
  set("syncon_service_frames_applied", s.frames_applied);
  set("syncon_service_frames_quarantined", s.frames_quarantined);
  set("syncon_service_backpressure_rejects", s.rejected_submits);
  set("syncon_service_verdicts", s.verdicts);
  set("syncon_service_live_log_events", s.live_log_events);
  set("syncon_service_live_log_peak", s.live_log_peak);
  set("syncon_service_reclaimed_events", s.reclaimed_events);
  set("syncon_service_compactions", s.compactions);

  // Per-tenant gauges, smallest tenant ids first, bounded so a 10k-tenant
  // run cannot flood the registry (the FaultyNetwork labeled-gauge idiom).
  std::size_t published = 0;
  std::vector<std::pair<std::uint64_t, const TenantSession*>> ordered;
  for (const auto& shard : shards_) {
    for (const auto& [tenant, session] : shard->sessions) {
      ordered.emplace_back(tenant, session.get());
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [tenant, session] : ordered) {
    if (published >= options_.per_tenant_metric_limit) break;
    const std::string labels = "{tenant=\"" + std::to_string(tenant) + "\"}";
    registry.gauge("syncon_service_tenant_live_log" + labels)
        .set(static_cast<std::int64_t>(
            session->core.system().live_log_events()));
    registry.gauge("syncon_service_tenant_verdicts" + labels)
        .set(static_cast<std::int64_t>(
            session->core.definite_verdicts().size()));
    registry.gauge("syncon_service_tenant_quarantined" + labels)
        .set(static_cast<std::int64_t>(session->quarantined_frames +
                                       session->core.quarantined()));
    ++published;
  }
}

}  // namespace syncon::service
