#include "service/tenant_codec.hpp"

#include "support/contracts.hpp"
#include "support/crc32.hpp"
#include "support/varint.hpp"

namespace syncon::service {

namespace {

/// Wraps a finished payload in the envelope; returns the envelope size.
std::size_t append_envelope(const std::vector<std::uint8_t>& payload,
                            std::vector<std::uint8_t>& out) {
  const std::size_t before = out.size();
  encode_varint(payload.size(), out);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t checksum = crc32(payload);
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(checksum >> shift));
  }
  return out.size() - before;
}

void append_string(const std::string& s, std::vector<std::uint8_t>& out) {
  encode_varint(s.size(), out);
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_string(std::span<const std::uint8_t>& in) {
  const std::uint64_t length = decode_varint(in);
  SYNCON_REQUIRE(length <= in.size(), "truncated string field");
  std::string s(reinterpret_cast<const char*>(in.data()),
                static_cast<std::size_t>(length));
  in = in.subspan(static_cast<std::size_t>(length));
  return s;
}

FrameKind frame_kind_of(TenantOp::Kind kind) {
  switch (kind) {
    case TenantOp::Kind::kBegin: return FrameKind::kBegin;
    case TenantOp::Kind::kWatch: return FrameKind::kWatch;
    case TenantOp::Kind::kComplete: return FrameKind::kComplete;
    case TenantOp::Kind::kForget: return FrameKind::kForget;
    case TenantOp::Kind::kEvent: return FrameKind::kEvent;
    case TenantOp::Kind::kReport: return FrameKind::kReport;
    case TenantOp::Kind::kCheckpoint: return FrameKind::kCheckpoint;
  }
  SYNCON_REQUIRE(false, "unknown tenant op kind");
  return FrameKind::kHello;  // unreachable
}

}  // namespace

PeekStatus peek_frame(std::span<const std::uint8_t> in, FrameView& out) {
  // Hand-rolled varint scan: a truncated length prefix means "need more
  // bytes", which the throwing decoder cannot distinguish from garbage.
  std::uint64_t length = 0;
  unsigned shift = 0;
  std::size_t used = 0;
  for (;;) {
    if (used >= in.size()) return PeekStatus::kNeedMore;
    const std::uint8_t byte = in[used++];
    if (shift >= 64) return PeekStatus::kCorrupt;
    length |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) break;
    shift += 7;
  }
  if (length == 0 || length > kMaxFramePayload) return PeekStatus::kCorrupt;
  const std::size_t payload_length = static_cast<std::size_t>(length);
  if (in.size() - used < payload_length + 4) return PeekStatus::kNeedMore;

  const std::span<const std::uint8_t> payload = in.subspan(used, payload_length);
  std::uint32_t stored = 0;
  for (std::size_t b = 0; b < 4; ++b) {
    stored |= static_cast<std::uint32_t>(in[used + payload_length + b])
              << (8 * b);
  }
  if (crc32(payload) != stored) return PeekStatus::kCorrupt;

  std::span<const std::uint8_t> head = payload;
  const std::uint8_t kind = head.front();
  head = head.subspan(1);
  if (kind < static_cast<std::uint8_t>(FrameKind::kHello) ||
      kind > static_cast<std::uint8_t>(FrameKind::kCheckpoint)) {
    return PeekStatus::kCorrupt;
  }
  try {
    out.tenant = decode_varint(head);
    out.seq = decode_varint(head);
  } catch (const ContractViolation&) {
    return PeekStatus::kCorrupt;
  }
  out.kind = static_cast<FrameKind>(kind);
  out.body = head;
  out.frame_size = used + payload_length + 4;
  return PeekStatus::kOk;
}

TenantFrameEncoder::TenantFrameEncoder(std::uint32_t full_interval)
    : full_interval_(full_interval) {
  SYNCON_REQUIRE(full_interval_ > 0, "full interval must be positive");
}

TenantFrameEncoder::Stream& TenantFrameEncoder::stream_of(
    std::uint64_t tenant) {
  const auto it = streams_.find(tenant);
  SYNCON_REQUIRE(it != streams_.end(),
                 "encode_op before encode_hello for this tenant");
  return it->second;
}

void TenantFrameEncoder::encode_hello(std::uint64_t tenant,
                                      std::size_t processes,
                                      std::size_t resync_chunk,
                                      std::vector<std::uint8_t>& out) {
  SYNCON_REQUIRE(processes >= 2, "a tenant needs at least two processes");
  SYNCON_REQUIRE(resync_chunk > 0, "resync chunk must be positive");
  const auto [it, inserted] =
      streams_.try_emplace(tenant, processes, full_interval_);
  SYNCON_REQUIRE(inserted, "hello already sent for this tenant");

  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(FrameKind::kHello));
  encode_varint(tenant, payload);
  encode_varint(it->second.next_seq++, payload);  // seq 0
  encode_varint(processes, payload);
  encode_varint(resync_chunk, payload);
  append_envelope(payload, out);
}

std::size_t TenantFrameEncoder::encode_op(std::uint64_t tenant,
                                          const TenantOp& op,
                                          std::vector<std::uint8_t>& out) {
  Stream& stream = stream_of(tenant);
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(frame_kind_of(op.kind)));
  encode_varint(tenant, payload);
  encode_varint(stream.next_seq++, payload);

  switch (op.kind) {
    case TenantOp::Kind::kBegin:
    case TenantOp::Kind::kComplete:
    case TenantOp::Kind::kForget:
      append_string(op.label, payload);
      break;
    case TenantOp::Kind::kWatch:
      payload.push_back(static_cast<std::uint8_t>(op.relation.relation));
      payload.push_back(static_cast<std::uint8_t>(op.relation.proxy_x));
      payload.push_back(static_cast<std::uint8_t>(op.relation.proxy_y));
      append_string(op.label, payload);
      append_string(op.label2, payload);
      break;
    case TenantOp::Kind::kEvent:
      stream.journal.encode(WireMessage{op.event, op.clock}, payload);
      encode_varint(op.sources.size(), payload);
      for (const EventId& s : op.sources) {
        encode_varint(s.process, payload);
        encode_varint(s.index, payload);
      }
      encode_signed_varint(op.time, payload);
      append_string(op.label, payload);
      break;
    case TenantOp::Kind::kReport:
      stream.report.encode(WireMessage{op.event, op.clock}, payload);
      append_string(op.label, payload);
      break;
    case TenantOp::Kind::kCheckpoint:
      encode_varint(op.clock.size(), payload);
      for (std::size_t i = 0; i < op.clock.size(); ++i) {
        encode_varint(op.clock.at(i), payload);
      }
      break;
  }
  return append_envelope(payload, out);
}

void TenantFrameEncoder::release(std::uint64_t tenant) {
  streams_.erase(tenant);
}

TenantStreamDecoder::TenantStreamDecoder(std::size_t processes,
                                         std::uint64_t hello_seq)
    : journal_(processes), report_(processes), expected_seq_(hello_seq + 1) {}

bool TenantStreamDecoder::decode(const FrameView& frame, TenantOp& op) {
  // The splice guard, checked before any body byte: an out-of-position
  // frame must not be able to touch the chained delta-codec state.
  if (frame.seq != expected_seq_) return false;
  ++expected_seq_;  // in sequence: the stream position is consumed

  op = TenantOp{};
  std::span<const std::uint8_t> in = frame.body;
  try {
    switch (frame.kind) {
      case FrameKind::kHello:
        return false;  // hellos open sessions; they are not ops
      case FrameKind::kBegin:
        op.kind = TenantOp::Kind::kBegin;
        op.label = read_string(in);
        break;
      case FrameKind::kComplete:
        op.kind = TenantOp::Kind::kComplete;
        op.label = read_string(in);
        break;
      case FrameKind::kForget:
        op.kind = TenantOp::Kind::kForget;
        op.label = read_string(in);
        break;
      case FrameKind::kWatch: {
        op.kind = TenantOp::Kind::kWatch;
        SYNCON_REQUIRE(in.size() >= 3, "truncated watch frame");
        const std::uint8_t relation = in[0], px = in[1], py = in[2];
        in = in.subspan(3);
        SYNCON_REQUIRE(
            relation <= static_cast<std::uint8_t>(Relation::R4p) && px <= 1 &&
                py <= 1,
            "watch frame names an unknown relation");
        op.relation = {static_cast<Relation>(relation),
                       static_cast<ProxyKind>(px), static_cast<ProxyKind>(py)};
        op.label = read_string(in);
        op.label2 = read_string(in);
        break;
      }
      case FrameKind::kEvent: {
        op.kind = TenantOp::Kind::kEvent;
        WireMessage message;
        if (!journal_.try_decode(in, message)) return false;
        op.event = message.source;
        op.clock = std::move(message.clock);
        const std::uint64_t n_sources = decode_varint(in);
        SYNCON_REQUIRE(n_sources <= in.size(), "impossible source count");
        op.sources.reserve(static_cast<std::size_t>(n_sources));
        for (std::uint64_t i = 0; i < n_sources; ++i) {
          const auto process = decode_varint(in);
          const auto index = decode_varint(in);
          op.sources.push_back({static_cast<ProcessId>(process),
                                static_cast<EventIndex>(index)});
        }
        op.time = decode_signed_varint(in);
        op.label = read_string(in);
        break;
      }
      case FrameKind::kReport: {
        op.kind = TenantOp::Kind::kReport;
        WireMessage message;
        if (!report_.try_decode(in, message)) return false;
        op.event = message.source;
        op.clock = std::move(message.clock);
        op.label = read_string(in);
        break;
      }
      case FrameKind::kCheckpoint: {
        op.kind = TenantOp::Kind::kCheckpoint;
        const std::uint64_t size = decode_varint(in);
        SYNCON_REQUIRE(size <= in.size(), "impossible clock size");
        VectorClock clock(static_cast<std::size_t>(size), 0);
        for (std::uint64_t i = 0; i < size; ++i) {
          clock.set(static_cast<std::size_t>(i),
                    static_cast<ClockValue>(decode_varint(in)));
        }
        op.clock = std::move(clock);
        break;
      }
    }
  } catch (const ContractViolation&) {
    return false;
  }
  return in.empty();  // trailing bytes mean a garbled body
}

bool decode_hello(const FrameView& frame, std::size_t& processes,
                  std::size_t& resync_chunk) {
  if (frame.kind != FrameKind::kHello) return false;
  std::span<const std::uint8_t> in = frame.body;
  try {
    const std::uint64_t p = decode_varint(in);
    const std::uint64_t chunk = decode_varint(in);
    if (!in.empty() || p < 2 || p > 1u << 20 || chunk == 0) return false;
    processes = static_cast<std::size_t>(p);
    resync_chunk = static_cast<std::size_t>(chunk);
  } catch (const ContractViolation&) {
    return false;
  }
  return true;
}

}  // namespace syncon::service
