#include "service/load.hpp"

#include <deque>
#include <utility>

#include "support/contracts.hpp"

namespace syncon::service {

namespace {

/// One in-flight tenant: its script, its encode cursor, and at most one
/// encoded-but-unaccepted frame awaiting retry.
struct ActiveTenant {
  std::uint64_t id = 0;
  TenantScript script;
  std::size_t cursor = 0;       // next op to encode
  bool hello_sent = false;
  std::vector<std::uint8_t> pending;  // encoded frame awaiting admission
};

}  // namespace

ServiceLoadResult run_service_load(const ServiceLoadConfig& config,
                                   MonitorDaemon& daemon) {
  SYNCON_REQUIRE(config.tenants > 0, "load needs at least one tenant");
  SYNCON_REQUIRE(config.window > 0 && config.batch > 0,
                 "window and batch must be positive");

  ServiceLoadResult result;
  TenantFrameEncoder encoder;
  std::deque<ActiveTenant> active;
  std::uint64_t next_tenant = 0;

  const auto admit_tenant = [&]() {
    ActiveTenant tenant;
    tenant.id = next_tenant++;
    TenantWorkload workload = config.workload;
    // Independent per-tenant fault schedules from one master seed.
    workload.seed = config.seed ^ (0x9e3779b97f4a7c15ull * (tenant.id + 1));
    tenant.script = generate_tenant_script(workload);
    result.total_events += tenant.script.executed_events;
    result.total_ops += tenant.script.ops.size();
    active.push_back(std::move(tenant));
  };

  while (next_tenant < config.tenants && active.size() < config.window) {
    admit_tenant();
  }

  while (!active.empty()) {
    // Submit phase: every active tenant pushes up to `batch` frames; a
    // rejected frame parks in `pending` and the tenant yields until the
    // next round — the pump below frees the queues, so progress is certain.
    for (ActiveTenant& tenant : active) {
      for (std::size_t submitted = 0; submitted < config.batch; ++submitted) {
        if (tenant.pending.empty()) {
          if (!tenant.hello_sent) {
            encoder.encode_hello(tenant.id, tenant.script.processes,
                                 tenant.script.resync_chunk, tenant.pending);
            tenant.hello_sent = true;
          } else if (tenant.cursor < tenant.script.ops.size()) {
            encoder.encode_op(tenant.id, tenant.script.ops[tenant.cursor],
                              tenant.pending);
            ++tenant.cursor;
          } else {
            break;  // tenant fully encoded
          }
        }
        const Admission admission = daemon.submit(tenant.pending);
        if (!admission.accepted) break;  // backpressure: retry next round
        tenant.pending.clear();
        ++result.total_frames;
      }
    }

    daemon.pump();
    ++result.rounds;

    // Retire phase: a tenant whose last frame was accepted is now fully
    // applied (pump is a barrier) — check identity and admit a successor.
    while (!active.empty() && active.front().pending.empty() &&
           active.front().hello_sent &&
           active.front().cursor == active.front().script.ops.size()) {
      const ActiveTenant& done = active.front();
      if (config.check_identity) {
        const std::vector<std::string> served = daemon.verdicts(done.id);
        result.verdicts_total += served.size();
        if (served != done.script.reference_verdicts) {
          ++result.identity_mismatches;
        }
      }
      ++result.tenants_run;
      encoder.release(done.id);
      if (config.release_finished) daemon.release(done.id);
      active.pop_front();
      if (next_tenant < config.tenants) admit_tenant();
    }

    if (config.on_round) config.on_round(result.rounds - 1);
  }

  result.identity_ok = result.identity_mismatches == 0;
  result.daemon = daemon.stats();
  return result;
}

}  // namespace syncon::service
