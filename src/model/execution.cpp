#include "model/execution.hpp"

#include <ostream>

#include "support/contracts.hpp"

namespace syncon {

std::ostream& operator<<(std::ostream& os, const EventId& e) {
  return os << 'e' << e.process << '.' << e.index;
}

EventIndex Execution::real_count(ProcessId p) const {
  SYNCON_REQUIRE(p < processes_.size(), "process id out of range");
  return processes_[p].real_count;
}

EventId Execution::initial(ProcessId p) const {
  SYNCON_REQUIRE(p < processes_.size(), "process id out of range");
  return EventId{p, 0};
}

EventId Execution::final(ProcessId p) const {
  return EventId{p, real_count(p) + 1};
}

EventId Execution::event(ProcessId p, EventIndex index) const {
  SYNCON_REQUIRE(p < processes_.size(), "process id out of range");
  SYNCON_REQUIRE(index < total_count(p), "event index out of range");
  return EventId{p, index};
}

bool Execution::valid_event(EventId e) const {
  return e.process < processes_.size() && e.index < total_count(e.process);
}

std::uint32_t Execution::seq_of(EventId e) const {
  SYNCON_ASSERT(is_real(e), "seq_of on a dummy event");
  return processes_[e.process].seq_by_index[e.index - 1];
}

std::uint32_t Execution::topological_index(EventId e) const {
  SYNCON_REQUIRE(is_real(e), "topological_index requires a real event");
  return seq_of(e);
}

std::span<const EventId> Execution::incoming(EventId e) const {
  SYNCON_REQUIRE(valid_event(e), "incoming() of invalid event");
  if (is_dummy(e)) return {};
  const auto& sources = incoming_[seq_of(e)];
  return {sources.data(), sources.size()};
}

ExecutionBuilder::ExecutionBuilder(std::size_t process_count) {
  SYNCON_REQUIRE(process_count > 0, "an execution needs at least one process");
  exec_.processes_.resize(process_count);
}

EventId ExecutionBuilder::append(ProcessId p, std::vector<EventId> sources) {
  SYNCON_REQUIRE(!built_, "builder already consumed by build()");
  SYNCON_REQUIRE(p < exec_.processes_.size(), "process id out of range");
  auto& info = exec_.processes_[p];
  ++info.real_count;
  const EventId id{p, info.real_count};
  info.seq_by_index.push_back(static_cast<std::uint32_t>(exec_.order_.size()));
  exec_.order_.push_back(id);
  for (const EventId& src : sources) {
    exec_.messages_.push_back(Message{src, id});
  }
  exec_.incoming_.push_back(std::move(sources));
  return id;
}

EventId ExecutionBuilder::local(ProcessId p) { return append(p, {}); }

MessageToken ExecutionBuilder::send(ProcessId p, EventId* event_out) {
  const EventId e = append(p, {});
  if (event_out != nullptr) *event_out = e;
  return MessageToken(e);
}

EventId ExecutionBuilder::receive(ProcessId p, const MessageToken& token) {
  const MessageToken tokens[] = {token};
  return receive_all(p, tokens);
}

EventId ExecutionBuilder::receive_all(ProcessId p,
                                      std::span<const MessageToken> tokens) {
  SYNCON_REQUIRE(!tokens.empty(), "receive_all needs at least one message");
  std::vector<EventId> sources;
  sources.reserve(tokens.size());
  for (const MessageToken& t : tokens) {
    SYNCON_REQUIRE(t.source().process != p,
                   "a process cannot receive its own message");
    sources.push_back(t.source());
  }
  return append(p, std::move(sources));
}

EventId ExecutionBuilder::receive_from(ProcessId p,
                                       std::span<const EventId> sources) {
  SYNCON_REQUIRE(!sources.empty(), "receive_from needs at least one source");
  std::vector<EventId> srcs;
  srcs.reserve(sources.size());
  for (const EventId& src : sources) {
    SYNCON_REQUIRE(src.process != p,
                   "a process cannot receive its own message");
    SYNCON_REQUIRE(src.process < exec_.processes_.size() && src.index >= 1 &&
                       src.index <= exec_.real_count(src.process),
                   "message source must be an existing real event");
    srcs.push_back(src);
  }
  return append(p, std::move(srcs));
}

Execution ExecutionBuilder::build() {
  SYNCON_REQUIRE(!built_, "build() called twice");
  built_ = true;
  return std::move(exec_);
}

}  // namespace syncon
