// The clock concept (DESIGN.md §3.11): the algebra every timestamp
// representation must implement so stamping (model/timestamps.hpp), the
// Theorem 19 probe (cuts/ll_relation.hpp, relations/fast.hpp) and the C1–C4
// cut-timestamp construction (nonatomic/cut_timestamps.hpp) can run over
// any backend.
//
// A clock is a fixed-width vector of ClockValue components forming the
// usual lattice: merge_max is join (Lemma 16, union of cuts), merge_min is
// meet (intersection), leq the componentwise order. Backends differ in how
// they *represent* the vector, not in what it means:
//
//   VectorClock      dense std::vector — the default; every operation O(|P|)
//   TreeClock        Fidge/Mattern values arranged as a tree recording who
//                    learned what through whom, so monotone joins prune
//                    whole already-known subtrees (arXiv 2201.06325)
//   CompressedClock  dense values with delta/varint serialization for
//                    bounded piggyback bytes on the wire (arXiv 1606.05962)
//
// Semantic requirements beyond the signatures (verified for every backend
// by tests/clock_concept_test.cpp and the `clock_backend_identity`
// conformance property):
//   * merge_max / merge_min are commutative, associative, idempotent, and
//     mutually absorptive (a lattice);
//   * leq is the lattice order: a.leq(b) iff merge_max(a, b) == b;
//   * lt(b) == leq(b) && *this != b; incomparable = neither leq;
//   * tick(i) adds one to component i and declares the clock "owned" by i —
//     callers must only tick a clock that represents exactly process i's
//     current knowledge (the stamping invariant backends like TreeClock
//     rely on for sublinear joins);
//   * set(i, v) is an arbitrary component write: always safe, but it may
//     demote a backend to its dense fallback paths (it breaks the causal
//     interpretation of the components);
//   * to_dense() / from_dense() convert losslessly to the dense
//     representation — the explicit conversion boundary for layers that
//     stay dense (cuts/watermark componentwise-min, Cut materialization);
//   * encode(out) appends a self-delimiting serialization that decode(in)
//     parses back to an equal clock (in is consumed by reference, so
//     encoded clocks concatenate).
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/types.hpp"
#include "model/vector_clock.hpp"

namespace syncon {

template <typename C>
concept ClockRep =
    std::regular<C> &&  // default-constructible, copyable, ==
    requires(C c, const C& cc, std::size_t i, ClockValue v,
             const VectorClock& dense, std::vector<std::uint8_t>& bytes,
             std::span<const std::uint8_t>& in) {
      C(std::size_t{}, ClockValue{});  // size, fill
      { cc.size() } -> std::convertible_to<std::size_t>;
      { cc.at(i) } -> std::convertible_to<ClockValue>;
      { c.set(i, v) } -> std::same_as<void>;
      { c.tick(i) } -> std::same_as<void>;
      { c.merge_max(cc) } -> std::same_as<void>;
      { c.merge_min(cc) } -> std::same_as<void>;
      { cc.leq(cc) } -> std::convertible_to<bool>;
      { cc.lt(cc) } -> std::convertible_to<bool>;
      { cc.incomparable(cc) } -> std::convertible_to<bool>;
      { cc.to_dense() } -> std::same_as<VectorClock>;
      { C::from_dense(dense) } -> std::same_as<C>;
      { cc.encode(bytes) } -> std::same_as<void>;
      { C::decode(in) } -> std::same_as<C>;
    };

/// Canonical spelling of the lattice operations is the in-place member
/// (merge_max / merge_min); these free functions are the copying
/// convenience form and simply delegate.
template <ClockRep C>
C component_max(const C& a, const C& b) {
  C out = a;
  out.merge_max(b);
  return out;
}

template <ClockRep C>
C component_min(const C& a, const C& b) {
  C out = a;
  out.merge_min(b);
  return out;
}

}  // namespace syncon
