// Timestamping of a recorded execution: the canonical vector clocks T(e)
// (Defn 13) and the information needed for reverse timestamps T^R(e)
// (Defn 14), computed in two O(|E|·|P|) passes.
//
// Conventions (see DESIGN.md §3.1):
//  * T(e)[i] counts ALL events on process i that ⪯ e, including dummies, so
//    T(e)[proc(e)] = index(e) + 1 and T(e)[i] >= 1 for every non-dummy e.
//  * F(e)[i] ("future start") is the index on process i of the earliest
//    event that ⪰ e; sentinel total_count(i) when no such event exists
//    (which can only happen for e = ⊤_j, i != j). T^R(e)[i] =
//    total_count(i) - F(e)[i].
//  * The cut ↓e has counts T(e); the cut e↑ has counts F(e) + 1 — these are
//    the timestamps the paper derives at the end of its Section 2.3 (our
//    constants differ because we pin down dummy counting; the paper leaves
//    it implicit).
#pragma once

#include <vector>

#include "model/execution.hpp"
#include "model/types.hpp"
#include "model/vector_clock.hpp"

namespace syncon {

class Timestamps {
 public:
  /// Stamps every real event of `exec`. The execution must outlive this
  /// object (a reference is retained).
  explicit Timestamps(const Execution& exec);

  const Execution& execution() const { return *exec_; }

  /// T(e), Defn 13. Valid for dummy events too (computed on demand).
  VectorClock forward(EventId e) const;
  /// Reference to the stored clock; requires a real event (no copy).
  const VectorClock& forward_ref(EventId e) const;

  /// F(e): per-process index of the earliest event ⪰ e (see header note).
  VectorClock future_start(EventId e) const;
  const VectorClock& future_start_ref(EventId e) const;

  /// T^R(e), Defn 14: number of events on each process that ⪰ e.
  VectorClock reverse(EventId e) const;

  /// a ⪯ b (happened-before-or-equal), O(1) via timestamps.
  bool leq(EventId a, EventId b) const;
  /// a ≺ b (strict happened-before).
  bool lt(EventId a, EventId b) const { return a != b && leq(a, b); }
  /// Neither a ⪯ b nor b ⪯ a.
  bool concurrent(EventId a, EventId b) const {
    return !leq(a, b) && !leq(b, a);
  }

  /// Timestamp (= per-process event counts) of the cut ↓e (Defn 8).
  VectorClock past_cut_counts(EventId e) const { return forward(e); }
  /// Timestamp of the cut e↑ (Defn 9): F(e)[i] + 1 per component.
  VectorClock future_cut_counts(EventId e) const;

 private:
  const Execution* exec_;
  std::vector<VectorClock> forward_;  // by creation seq, real events
  std::vector<VectorClock> future_;   // by creation seq, real events
};

}  // namespace syncon
