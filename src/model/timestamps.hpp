// Timestamping of a recorded execution: the canonical vector clocks T(e)
// (Defn 13) and the information needed for reverse timestamps T^R(e)
// (Defn 14), computed in two O(|E|·|P|) passes.
//
// Conventions (see DESIGN.md §3.1):
//  * T(e)[i] counts ALL events on process i that ⪯ e, including dummies, so
//    T(e)[proc(e)] = index(e) + 1 and T(e)[i] >= 1 for every non-dummy e.
//  * F(e)[i] ("future start") is the index on process i of the earliest
//    event that ⪰ e; sentinel total_count(i) when no such event exists
//    (which can only happen for e = ⊤_j, i != j). T^R(e)[i] =
//    total_count(i) - F(e)[i].
//  * The cut ↓e has counts T(e); the cut e↑ has counts F(e) + 1 — these are
//    the timestamps the paper derives at the end of its Section 2.3 (our
//    constants differ because we pin down dummy counting; the paper leaves
//    it implicit).
//
// BasicTimestamps is generic over the clock representation (ClockRep,
// model/clock.hpp). The forward sweep is phrased in the monotone clock
// algebra — start from the predecessor's clock (or the all-ones floor),
// tick the owner, then join the incoming clocks — which is bit-identical
// to the classic "merge then overwrite own component" formulation (every
// joined clock is causally before e, so its own component is at most
// index(e)) and is exactly the discipline sublinear backends such as
// TreeClock rely on. The backward pass writes sentinel components, so it
// runs on every backend's dense paths. `Timestamps` remains the dense
// VectorClock instantiation and is the default everywhere.
#pragma once

#include <vector>

#include "model/clock.hpp"
#include "model/execution.hpp"
#include "model/types.hpp"
#include "model/vector_clock.hpp"
#include "obs/span.hpp"
#include "support/contracts.hpp"

namespace syncon {

template <ClockRep Clock>
class BasicTimestamps {
 public:
  using clock_type = Clock;

  /// Stamps every real event of `exec`. The execution must outlive this
  /// object (a reference is retained).
  explicit BasicTimestamps(const Execution& exec);

  const Execution& execution() const { return *exec_; }

  /// T(e), Defn 13. Valid for dummy events too (computed on demand).
  Clock forward(EventId e) const;
  /// Reference to the stored clock; requires a real event (no copy).
  const Clock& forward_ref(EventId e) const;

  /// F(e): per-process index of the earliest event ⪰ e (see header note).
  Clock future_start(EventId e) const;
  const Clock& future_start_ref(EventId e) const;

  /// T^R(e), Defn 14: number of events on each process that ⪰ e.
  Clock reverse(EventId e) const;

  /// a ⪯ b (happened-before-or-equal), O(1) via timestamps.
  bool leq(EventId a, EventId b) const;
  /// a ≺ b (strict happened-before).
  bool lt(EventId a, EventId b) const { return a != b && leq(a, b); }
  /// Neither a ⪯ b nor b ⪯ a.
  bool concurrent(EventId a, EventId b) const {
    return !leq(a, b) && !leq(b, a);
  }

  /// Timestamp (= per-process event counts) of the cut ↓e (Defn 8).
  Clock past_cut_counts(EventId e) const { return forward(e); }
  /// Timestamp of the cut e↑ (Defn 9): F(e)[i] + 1 per component.
  Clock future_cut_counts(EventId e) const;

 private:
  const Execution* exec_;
  std::vector<Clock> forward_;  // by creation seq, real events
  std::vector<Clock> future_;   // by creation seq, real events
};

/// The default, dense instantiation used throughout the repo.
using Timestamps = BasicTimestamps<VectorClock>;

// ---------------------------------------------------------------------------
// Implementation.

template <ClockRep Clock>
BasicTimestamps<Clock>::BasicTimestamps(const Execution& exec) : exec_(&exec) {
  SYNCON_SPAN("model/stamp");
  const std::size_t p_count = exec.process_count();
  const auto& order = exec.topological_order();
  forward_.resize(order.size());
  future_.resize(order.size());

  // Forward pass: creation order is topological for ≺. Start from the
  // predecessor's clock (the all-ones floor for index 1: ⊥_i ≺ e for every
  // process i, the paper's axiom), advance the owner, join the incoming
  // clocks — the order that keeps causal backends on their fast path.
  for (std::size_t seq = 0; seq < order.size(); ++seq) {
    const EventId e = order[seq];
    Clock t = e.index > 1
                  ? forward_[exec.topological_index({e.process, e.index - 1})]
                  : Clock(p_count, 1);
    t.tick(e.process);
    for (const EventId& src : exec.incoming(e)) {
      t.merge_max(forward_[exec.topological_index(src)]);
    }
    // |{events on own process ⪯ e}| — the joins cannot raise it, because
    // every joined clock is causally before e.
    SYNCON_ASSERT(t.at(e.process) == e.index + 1,
                  "stamped clock must own exactly index + 1 local events");
    forward_[seq] = std::move(t);
  }

  // Backward pass needs outgoing message adjacency.
  std::vector<std::vector<std::uint32_t>> outgoing(order.size());
  for (const Message& m : exec.messages()) {
    outgoing[exec.topological_index(m.source)].push_back(
        exec.topological_index(m.target));
  }

  for (std::size_t seq = order.size(); seq-- > 0;) {
    const EventId e = order[seq];
    // Ceiling: e ≺ ⊤_i for every process i, so F(e)[i] <= index(⊤_i).
    Clock f(p_count, 0);
    for (std::size_t i = 0; i < p_count; ++i) {
      f.set(i, exec.real_count(static_cast<ProcessId>(i)) + 1);
    }
    if (e.index < exec.real_count(e.process)) {
      f.merge_min(future_[exec.topological_index({e.process, e.index + 1})]);
    }
    for (std::uint32_t dst_seq : outgoing[seq]) {
      f.merge_min(future_[dst_seq]);
    }
    f.set(e.process, e.index);  // e itself is the earliest event ⪰ e
    future_[seq] = std::move(f);
  }
}

template <ClockRep Clock>
const Clock& BasicTimestamps<Clock>::forward_ref(EventId e) const {
  SYNCON_REQUIRE(exec_->is_real(e), "forward_ref requires a real event");
  return forward_[exec_->topological_index(e)];
}

template <ClockRep Clock>
const Clock& BasicTimestamps<Clock>::future_start_ref(EventId e) const {
  SYNCON_REQUIRE(exec_->is_real(e), "future_start_ref requires a real event");
  return future_[exec_->topological_index(e)];
}

template <ClockRep Clock>
Clock BasicTimestamps<Clock>::forward(EventId e) const {
  SYNCON_REQUIRE(exec_->valid_event(e), "forward() of invalid event");
  const std::size_t p_count = exec_->process_count();
  if (exec_->is_initial(e)) {
    Clock t(p_count, 0);
    t.set(e.process, 1);
    return t;
  }
  if (exec_->is_final(e)) {
    Clock t(p_count, 0);
    for (std::size_t i = 0; i < p_count; ++i) {
      t.set(i, exec_->real_count(static_cast<ProcessId>(i)) + 1);
    }
    t.set(e.process, e.index + 1);  // = n_p + 2: includes ⊤_p itself
    return t;
  }
  return forward_ref(e);
}

template <ClockRep Clock>
Clock BasicTimestamps<Clock>::future_start(EventId e) const {
  SYNCON_REQUIRE(exec_->valid_event(e), "future_start() of invalid event");
  const std::size_t p_count = exec_->process_count();
  if (exec_->is_initial(e)) {
    // ⊥_p ≺ every non-dummy event and every ⊤_i; earliest on p is itself.
    Clock f(p_count, 1);
    f.set(e.process, 0);
    return f;
  }
  if (exec_->is_final(e)) {
    // Nothing follows ⊤_p except itself; sentinel total_count elsewhere.
    Clock f(p_count, 0);
    for (std::size_t i = 0; i < p_count; ++i) {
      f.set(i, exec_->total_count(static_cast<ProcessId>(i)));
    }
    f.set(e.process, e.index);
    return f;
  }
  return future_start_ref(e);
}

template <ClockRep Clock>
Clock BasicTimestamps<Clock>::reverse(EventId e) const {
  const Clock f = future_start(e);
  Clock r(exec_->process_count(), 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r.set(i, exec_->total_count(static_cast<ProcessId>(i)) - f.at(i));
  }
  return r;
}

template <ClockRep Clock>
Clock BasicTimestamps<Clock>::future_cut_counts(EventId e) const {
  Clock f = future_start(e);
  for (std::size_t i = 0; i < f.size(); ++i) f.set(i, f.at(i) + 1);
  return f;
}

template <ClockRep Clock>
bool BasicTimestamps<Clock>::leq(EventId a, EventId b) const {
  SYNCON_REQUIRE(exec_->valid_event(a) && exec_->valid_event(b),
                 "leq() of invalid event");
  if (a == b) return true;
  if (exec_->is_initial(a)) {
    // ⊥_i precedes everything except the other initial events.
    return !(exec_->is_initial(b) && b.process != a.process);
  }
  if (exec_->is_final(a)) return false;  // nothing follows a final event
  if (exec_->is_initial(b)) return false;
  if (exec_->is_final(b)) return true;  // every non-dummy event precedes ⊤_j
  // Both real: a ⪯ b iff b knows at least index(a)+1 events of a's process.
  return forward_ref(a).at(a.process) <= forward_ref(b).at(a.process);
}

}  // namespace syncon
