#include "model/reachability.hpp"

#include "support/contracts.hpp"

namespace syncon {

ReachabilityOracle::ReachabilityOracle(const Execution& exec) : exec_(&exec) {
  const auto& order = exec.topological_order();
  const std::size_t n = order.size();
  words_per_event_ = (n + 63) / 64;
  ancestors_.assign(n * words_per_event_, 0);

  auto row = [&](std::size_t seq) {
    return ancestors_.data() + seq * words_per_event_;
  };
  auto merge = [&](std::uint64_t* dst, const std::uint64_t* src) {
    for (std::size_t w = 0; w < words_per_event_; ++w) dst[w] |= src[w];
  };

  for (std::size_t seq = 0; seq < n; ++seq) {
    const EventId e = order[seq];
    std::uint64_t* self = row(seq);
    if (e.index > 1) {
      merge(self, row(exec.topological_index({e.process, e.index - 1})));
    }
    for (const EventId& src : exec.incoming(e)) {
      merge(self, row(exec.topological_index(src)));
    }
    self[seq / 64] |= std::uint64_t{1} << (seq % 64);
  }
}

bool ReachabilityOracle::real_leq_real(EventId a, EventId b) const {
  const std::size_t sa = exec_->topological_index(a);
  const std::size_t sb = exec_->topological_index(b);
  const std::uint64_t* anc = ancestors_.data() + sb * words_per_event_;
  return (anc[sa / 64] >> (sa % 64)) & 1;
}

bool ReachabilityOracle::leq(EventId a, EventId b) const {
  SYNCON_REQUIRE(exec_->valid_event(a) && exec_->valid_event(b),
                 "leq() of invalid event");
  if (a == b) return true;
  if (exec_->is_initial(a)) {
    return !(exec_->is_initial(b) && b.process != a.process);
  }
  if (exec_->is_final(a)) return false;
  if (exec_->is_initial(b)) return false;
  if (exec_->is_final(b)) return true;
  return real_leq_real(a, b);
}

}  // namespace syncon
