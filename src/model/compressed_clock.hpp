// Compressed-timestamp backend of the clock concept (model/clock.hpp),
// after the bounded/encoded vector timestamps of arXiv 1606.05962.
//
// In memory a CompressedClock is dense — the same ClockValue vector as
// VectorClock, so every lattice operation is the plain componentwise scan
// and stamping is bit-identical to the dense backend. What the backend
// changes is the *wire identity* of a clock:
//
//   * encode(): self-delimiting absolute form — varint component count,
//     then each component as a zigzag varint delta from its left neighbor.
//     Stamped clocks have strongly correlated adjacent components, so the
//     deltas stay in one or two bytes instead of four.
//   * encode_relative(base) / decode_relative(base): sparse change-list
//     against a reference clock both ends already share (the previous
//     clock sent on the same FIFO link). Only components that differ from
//     the base are shipped, as (varint index gap, zigzag value delta)
//     pairs. Between consecutive events of one sender a vector clock
//     changes in few components, so piggyback bytes stay bounded by the
//     event's actual causal fan-in rather than |P|.
//
// The online wire path (src/online/wire_codec.hpp) chains relative
// encodings per link and falls back to the absolute form on resync. The
// decoder's output is dense values — that is the explicit densify boundary
// ISSUE/DESIGN.md §3.11 call out: everything past the codec (watermark
// minima, cut materialization) runs on VectorClock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "model/types.hpp"
#include "model/vector_clock.hpp"

namespace syncon {

class CompressedClock {
 public:
  CompressedClock() = default;
  /// All components initialized to `fill`.
  explicit CompressedClock(std::size_t size, ClockValue fill = 0);
  explicit CompressedClock(std::vector<ClockValue> components);

  std::size_t size() const { return components_.size(); }
  ClockValue at(std::size_t i) const;

  void set(std::size_t i, ClockValue v);
  void tick(std::size_t i);

  void merge_max(const CompressedClock& other);
  void merge_min(const CompressedClock& other);

  bool leq(const CompressedClock& other) const;
  bool lt(const CompressedClock& other) const;
  bool incomparable(const CompressedClock& other) const;

  VectorClock to_dense() const { return VectorClock(components_); }
  static CompressedClock from_dense(const VectorClock& dense);

  /// Absolute wire form (shared layout with VectorClock::encode, so the
  /// two backends' bytes are interchangeable on the wire).
  void encode(std::vector<std::uint8_t>& out) const;
  static CompressedClock decode(std::span<const std::uint8_t>& in);

  /// Sparse change-list against `base` (same size required): varint count
  /// of changed components, then per change a varint index gap from the
  /// previous changed index and a zigzag varint value delta from base.
  void encode_relative(const CompressedClock& base,
                       std::vector<std::uint8_t>& out) const;
  /// Reconstructs the clock encode_relative produced from the same base.
  static CompressedClock decode_relative(const CompressedClock& base,
                                         std::span<const std::uint8_t>& in);

  friend bool operator==(const CompressedClock&,
                         const CompressedClock&) = default;

 private:
  std::vector<ClockValue> components_;
};

std::ostream& operator<<(std::ostream& os, const CompressedClock& cc);

}  // namespace syncon
