#include "model/compressed_clock.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "support/contracts.hpp"
#include "support/varint.hpp"

namespace syncon {

CompressedClock::CompressedClock(std::size_t size, ClockValue fill)
    : components_(size, fill) {}

CompressedClock::CompressedClock(std::vector<ClockValue> components)
    : components_(std::move(components)) {}

ClockValue CompressedClock::at(std::size_t i) const {
  SYNCON_REQUIRE(i < components_.size(), "clock component out of range");
  return components_[i];
}

void CompressedClock::set(std::size_t i, ClockValue v) {
  SYNCON_REQUIRE(i < components_.size(), "clock component out of range");
  components_[i] = v;
}

void CompressedClock::tick(std::size_t i) {
  SYNCON_REQUIRE(i < components_.size(), "clock component out of range");
  ++components_[i];
}

void CompressedClock::merge_max(const CompressedClock& other) {
  SYNCON_REQUIRE(size() == other.size(), "merging clocks of different size");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = std::max(components_[i], other.components_[i]);
  }
}

void CompressedClock::merge_min(const CompressedClock& other) {
  SYNCON_REQUIRE(size() == other.size(), "merging clocks of different size");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = std::min(components_[i], other.components_[i]);
  }
}

bool CompressedClock::leq(const CompressedClock& other) const {
  SYNCON_REQUIRE(size() == other.size(), "comparing clocks of different size");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] > other.components_[i]) return false;
  }
  return true;
}

bool CompressedClock::lt(const CompressedClock& other) const {
  return leq(other) && components_ != other.components_;
}

bool CompressedClock::incomparable(const CompressedClock& other) const {
  return !leq(other) && !other.leq(*this);
}

CompressedClock CompressedClock::from_dense(const VectorClock& dense) {
  std::vector<ClockValue> values(dense.values().begin(), dense.values().end());
  return CompressedClock(std::move(values));
}

void CompressedClock::encode(std::vector<std::uint8_t>& out) const {
  to_dense().encode(out);  // absolute wire layout is shared across backends
}

CompressedClock CompressedClock::decode(std::span<const std::uint8_t>& in) {
  return from_dense(VectorClock::decode(in));
}

void CompressedClock::encode_relative(const CompressedClock& base,
                                      std::vector<std::uint8_t>& out) const {
  SYNCON_REQUIRE(size() == base.size(),
                 "relative encoding requires a base of the same size");
  std::uint64_t changed = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != base.components_[i]) ++changed;
  }
  encode_varint(changed, out);
  std::uint64_t prev_index = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] == base.components_[i]) continue;
    encode_varint(static_cast<std::uint64_t>(i) - prev_index, out);
    encode_signed_varint(static_cast<std::int64_t>(components_[i]) -
                             static_cast<std::int64_t>(base.components_[i]),
                         out);
    prev_index = static_cast<std::uint64_t>(i);
  }
}

CompressedClock CompressedClock::decode_relative(
    const CompressedClock& base, std::span<const std::uint8_t>& in) {
  CompressedClock out = base;
  const std::uint64_t changed = decode_varint(in);
  SYNCON_REQUIRE(changed <= out.components_.size(),
                 "relative clock encoding lists more changes than components");
  std::uint64_t index = 0;
  for (std::uint64_t k = 0; k < changed; ++k) {
    index += decode_varint(in);
    SYNCON_REQUIRE(index < out.components_.size(),
                   "relative clock encoding indexes past the clock size");
    const std::int64_t v =
        static_cast<std::int64_t>(out.components_[index]) +
        decode_signed_varint(in);
    SYNCON_REQUIRE(v >= 0 && v <= static_cast<std::int64_t>(
                                      std::numeric_limits<ClockValue>::max()),
                   "decoded clock component out of range");
    out.components_[index] = static_cast<ClockValue>(v);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const CompressedClock& cc) {
  return os << cc.to_dense();
}

}  // namespace syncon
