// Lamport scalar clocks — the classic single-integer timestamps satisfying
//   e ≺ e'  ⟹  C(e) < C(e')
// but NOT the converse. They exist here as the counterpoint to Defn 13's
// remark that |P|-component vector clocks are the MINIMUM structure whose
// order is isomorphic to causality: tests/scalar_clock_test.cpp exhibits
// concurrent events that scalar clocks order, and relations that would be
// misjudged from scalar order alone.
#pragma once

#include <cstdint>
#include <vector>

#include "model/execution.hpp"
#include "model/types.hpp"

namespace syncon {

class ScalarClocks {
 public:
  /// Assigns C(e) = 1 + max over predecessors, in one O(|E|) pass.
  explicit ScalarClocks(const Execution& exec);

  const Execution& execution() const { return *exec_; }

  /// Clock of a real event.
  std::uint64_t at(EventId e) const;

  /// The one sound deduction scalar clocks allow: C(a) >= C(b) ⟹ a ⊀ b.
  bool cannot_precede(EventId a, EventId b) const { return at(a) >= at(b); }

  /// Length of the longest causal chain (the computation's critical path).
  std::uint64_t critical_path_length() const { return max_clock_; }

 private:
  const Execution* exec_;
  std::vector<std::uint64_t> clocks_;  // by topological index
  std::uint64_t max_clock_ = 0;
};

}  // namespace syncon
