// Ground-truth causality oracle: explicit transitive closure of the event
// DAG (process edges + message edges), independent of vector clocks.
//
// This exists to validate the timestamp machinery in tests and to provide
// the "naive" baseline semantics. Memory is Θ(|E|² / 64) bits, so it is meant
// for verification-scale executions, not production traces.
#pragma once

#include <cstdint>
#include <vector>

#include "model/execution.hpp"
#include "model/types.hpp"

namespace syncon {

class ReachabilityOracle {
 public:
  explicit ReachabilityOracle(const Execution& exec);

  const Execution& execution() const { return *exec_; }

  /// a ⪯ b under the full model (dummy axioms included).
  bool leq(EventId a, EventId b) const;
  bool lt(EventId a, EventId b) const { return a != b && leq(a, b); }
  bool concurrent(EventId a, EventId b) const {
    return !leq(a, b) && !leq(b, a);
  }

 private:
  bool real_leq_real(EventId a, EventId b) const;

  const Execution* exec_;
  std::size_t words_per_event_;
  // ancestors_[seq] is a bitset over topological sequence numbers: bit s set
  // iff real event s ⪯ real event seq (reflexive).
  std::vector<std::uint64_t> ancestors_;
};

}  // namespace syncon
