#include "model/tree_clock.hpp"

#include <algorithm>
#include <ostream>

#include "support/contracts.hpp"

namespace syncon {

TreeClock::TreeClock(std::size_t size, ClockValue fill) {
  nodes_.resize(size);
  // Only the fill == 1 "floor" starts causal: it is dominated by every
  // stamped clock, and it establishes the invariant that causal clocks
  // keep every component >= 1 (which makes pruning floor values harmless).
  causal_ = size > 0 && fill == 1;
  if (size == 0) return;
  root_ = 0;
  nodes_[0].clk = fill;
  for (std::size_t i = 1; i < size; ++i) {
    nodes_[i].clk = fill;
    nodes_[i].aclk = fill;
    nodes_[i].parent = 0;
    nodes_[i].prev = static_cast<ProcessId>(i - 1);
    if (i + 1 < size) nodes_[i].next = static_cast<ProcessId>(i + 1);
  }
  if (size > 1) {
    nodes_[0].first_child = 1;
    nodes_[1].prev = kNone;
  }
}

ClockValue TreeClock::at(std::size_t i) const {
  SYNCON_REQUIRE(i < nodes_.size(), "clock component out of range");
  return nodes_[i].clk;
}

void TreeClock::set(std::size_t i, ClockValue v) {
  SYNCON_REQUIRE(i < nodes_.size(), "clock component out of range");
  nodes_[i].clk = v;
  causal_ = false;  // an arbitrary write breaks the provenance invariant
}

void TreeClock::tick(std::size_t i) {
  SYNCON_REQUIRE(i < nodes_.size(), "clock component out of range");
  const auto p = static_cast<ProcessId>(i);
  if (root_ != p) {
    // Re-root at the new owner: the whole current tree is (by the tick
    // contract) exactly what process i knows, so the old root attaches
    // under i at i's new time.
    detach(p);
    const ProcessId old_root = root_;
    root_ = p;
    nodes_[p].parent = kNone;
    ++nodes_[p].clk;
    attach_front(old_root, p, nodes_[p].clk);
  } else {
    ++nodes_[p].clk;
  }
}

void TreeClock::detach(ProcessId q) {
  Node& n = nodes_[q];
  if (n.parent == kNone) return;
  if (n.prev != kNone) {
    nodes_[n.prev].next = n.next;
  } else {
    nodes_[n.parent].first_child = n.next;
  }
  if (n.next != kNone) nodes_[n.next].prev = n.prev;
  n.parent = n.prev = n.next = kNone;
}

void TreeClock::attach_front(ProcessId q, ProcessId parent, ClockValue aclk) {
  Node& n = nodes_[q];
  n.parent = parent;
  n.aclk = aclk;
  n.prev = kNone;
  n.next = nodes_[parent].first_child;
  if (n.next != kNone) nodes_[n.next].prev = q;
  nodes_[parent].first_child = q;
}

void TreeClock::attach_after(ProcessId q, ProcessId parent, ClockValue aclk,
                             ProcessId cursor) {
  if (cursor == kNone) {
    attach_front(q, parent, aclk);
    return;
  }
  Node& n = nodes_[q];
  n.parent = parent;
  n.aclk = aclk;
  n.prev = cursor;
  n.next = nodes_[cursor].next;
  if (n.next != kNone) nodes_[n.next].prev = q;
  nodes_[cursor].next = q;
}

void TreeClock::dense_max(const TreeClock& other) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].clk = std::max(nodes_[i].clk, other.nodes_[i].clk);
  }
  causal_ = false;  // values may now disagree with the recorded provenance
}

bool TreeClock::join_visit(const TreeClock& other, ProcessId q) {
  const ClockValue c = other.nodes_[q].clk;
  Node& n = nodes_[q];
  const ClockValue t_old = n.clk;
  if (t_old >= c) return false;  // subtree already known — prune
  SYNCON_ASSERT(q != root_, "pruned join must not raise the root component");
  n.clk = c;
  detach(q);  // q keeps its own subtree; it re-attaches at the caller
  // Scan other's children of q in descending aclk order. A child attached
  // at or before t_old (and every later sibling) was already part of q's
  // knowledge at a time we dominate — stop there.
  ProcessId cursor = kNone;
  for (ProcessId v = other.nodes_[q].first_child; v != kNone;
       v = other.nodes_[v].next) {
    if (other.nodes_[v].aclk <= t_old) break;
    if (join_visit(other, v)) {
      attach_after(v, q, other.nodes_[v].aclk, cursor);
      cursor = v;
    }
  }
  return true;
}

void TreeClock::merge_max(const TreeClock& other) {
  SYNCON_REQUIRE(size() == other.size(), "merging clocks of different size");
  if (nodes_.empty()) return;
  if (!causal_ || !other.causal_) {
    dense_max(other);
    return;
  }
  // A causal join never raises the target's own (root) component — the
  // source is causally in the root's past. If a caller merges clocks where
  // it would, fall back to the dense scan (correct, just not pruned).
  if (other.nodes_[root_].clk > nodes_[root_].clk) {
    dense_max(other);
    return;
  }
  const ProcessId r0 = other.root_;
  if (join_visit(other, r0)) {
    attach_front(r0, root_, nodes_[root_].clk);
  }
}

void TreeClock::merge_min(const TreeClock& other) {
  SYNCON_REQUIRE(size() == other.size(), "merging clocks of different size");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].clk = std::min(nodes_[i].clk, other.nodes_[i].clk);
  }
  causal_ = false;  // a componentwise min dominates nobody's knowledge
}

bool TreeClock::leq(const TreeClock& other) const {
  SYNCON_REQUIRE(size() == other.size(), "comparing clocks of different size");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].clk > other.nodes_[i].clk) return false;
  }
  return true;
}

bool TreeClock::lt(const TreeClock& other) const {
  return leq(other) && !(*this == other);
}

bool TreeClock::incomparable(const TreeClock& other) const {
  return !leq(other) && !other.leq(*this);
}

VectorClock TreeClock::to_dense() const {
  std::vector<ClockValue> values;
  values.reserve(nodes_.size());
  for (const Node& n : nodes_) values.push_back(n.clk);
  return VectorClock(std::move(values));
}

TreeClock TreeClock::from_dense(const VectorClock& dense) {
  TreeClock tc(dense.size(), 0);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    tc.nodes_[i].clk = dense.at(i);
  }
  tc.causal_ = false;  // no provenance for arbitrary dense values
  return tc;
}

void TreeClock::encode(std::vector<std::uint8_t>& out) const {
  to_dense().encode(out);  // wire format is shared across backends
}

TreeClock TreeClock::decode(std::span<const std::uint8_t>& in) {
  return from_dense(VectorClock::decode(in));
}

bool operator==(const TreeClock& a, const TreeClock& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.nodes_.size(); ++i) {
    if (a.nodes_[i].clk != b.nodes_[i].clk) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const TreeClock& tc) {
  return os << tc.to_dense();
}

}  // namespace syncon
