#include "model/vector_clock.hpp"

#include <algorithm>
#include <ostream>

#include "support/contracts.hpp"

namespace syncon {

VectorClock::VectorClock(std::size_t size, ClockValue fill)
    : components_(size, fill) {}

VectorClock::VectorClock(std::vector<ClockValue> components)
    : components_(std::move(components)) {}

ClockValue VectorClock::operator[](std::size_t i) const {
  SYNCON_REQUIRE(i < components_.size(), "clock component out of range");
  return components_[i];
}

ClockValue& VectorClock::operator[](std::size_t i) {
  SYNCON_REQUIRE(i < components_.size(), "clock component out of range");
  return components_[i];
}

void VectorClock::merge_max(const VectorClock& other) {
  SYNCON_REQUIRE(size() == other.size(), "merging clocks of different size");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = std::max(components_[i], other.components_[i]);
  }
}

void VectorClock::merge_min(const VectorClock& other) {
  SYNCON_REQUIRE(size() == other.size(), "merging clocks of different size");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = std::min(components_[i], other.components_[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const {
  SYNCON_REQUIRE(size() == other.size(), "comparing clocks of different size");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] > other.components_[i]) return false;
  }
  return true;
}

bool VectorClock::lt(const VectorClock& other) const {
  return leq(other) && components_ != other.components_;
}

bool VectorClock::incomparable(const VectorClock& other) const {
  return !leq(other) && !other.leq(*this);
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '[';
  for (std::size_t i = 0; i < vc.size(); ++i) {
    if (i != 0) os << ' ';
    os << vc[i];
  }
  return os << ']';
}

VectorClock component_max(const VectorClock& a, const VectorClock& b) {
  VectorClock out = a;
  out.merge_max(b);
  return out;
}

VectorClock component_min(const VectorClock& a, const VectorClock& b) {
  VectorClock out = a;
  out.merge_min(b);
  return out;
}

}  // namespace syncon
