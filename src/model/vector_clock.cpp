#include "model/vector_clock.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "support/contracts.hpp"
#include "support/varint.hpp"

namespace syncon {

VectorClock::VectorClock(std::size_t size, ClockValue fill)
    : components_(size, fill) {}

VectorClock::VectorClock(std::vector<ClockValue> components)
    : components_(std::move(components)) {}

ClockValue VectorClock::at(std::size_t i) const {
  SYNCON_REQUIRE(i < components_.size(), "clock component out of range");
  return components_[i];
}

void VectorClock::set(std::size_t i, ClockValue v) {
  SYNCON_REQUIRE(i < components_.size(), "clock component out of range");
  components_[i] = v;
}

void VectorClock::tick(std::size_t i) {
  SYNCON_REQUIRE(i < components_.size(), "clock component out of range");
  ++components_[i];
}

ClockValue& VectorClock::operator[](std::size_t i) {
  SYNCON_REQUIRE(i < components_.size(), "clock component out of range");
  return components_[i];
}

void VectorClock::merge_max(const VectorClock& other) {
  SYNCON_REQUIRE(size() == other.size(), "merging clocks of different size");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = std::max(components_[i], other.components_[i]);
  }
}

void VectorClock::merge_min(const VectorClock& other) {
  SYNCON_REQUIRE(size() == other.size(), "merging clocks of different size");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = std::min(components_[i], other.components_[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const {
  SYNCON_REQUIRE(size() == other.size(), "comparing clocks of different size");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] > other.components_[i]) return false;
  }
  return true;
}

bool VectorClock::lt(const VectorClock& other) const {
  return leq(other) && components_ != other.components_;
}

bool VectorClock::incomparable(const VectorClock& other) const {
  return !leq(other) && !other.leq(*this);
}

void VectorClock::encode(std::vector<std::uint8_t>& out) const {
  encode_varint(components_.size(), out);
  std::int64_t prev = 0;
  for (const ClockValue v : components_) {
    encode_signed_varint(static_cast<std::int64_t>(v) - prev, out);
    prev = static_cast<std::int64_t>(v);
  }
}

VectorClock VectorClock::decode(std::span<const std::uint8_t>& in) {
  const std::uint64_t n = decode_varint(in);
  std::vector<ClockValue> values;
  values.reserve(n);
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t v = prev + decode_signed_varint(in);
    SYNCON_REQUIRE(v >= 0 && v <= static_cast<std::int64_t>(
                                      std::numeric_limits<ClockValue>::max()),
                   "decoded clock component out of range");
    values.push_back(static_cast<ClockValue>(v));
    prev = v;
  }
  return VectorClock(std::move(values));
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  os << '[';
  for (std::size_t i = 0; i < vc.size(); ++i) {
    if (i != 0) os << ' ';
    os << vc.at(i);
  }
  return os << ']';
}

}  // namespace syncon
