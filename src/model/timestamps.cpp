#include "model/timestamps.hpp"

#include "obs/span.hpp"
#include "support/contracts.hpp"

namespace syncon {

Timestamps::Timestamps(const Execution& exec) : exec_(&exec) {
  SYNCON_SPAN("model/stamp");
  const std::size_t p_count = exec.process_count();
  const auto& order = exec.topological_order();
  forward_.resize(order.size());
  future_.resize(order.size());

  // Forward pass: creation order is topological for ≺.
  for (std::size_t seq = 0; seq < order.size(); ++seq) {
    const EventId e = order[seq];
    // Floor of all ones: ⊥_i ≺ e for every process i (paper's axiom).
    VectorClock t(p_count, 1);
    if (e.index > 1) {
      t.merge_max(forward_[exec.topological_index({e.process, e.index - 1})]);
    }
    for (const EventId& src : exec.incoming(e)) {
      t.merge_max(forward_[exec.topological_index(src)]);
    }
    t[e.process] = e.index + 1;  // |{events on own process ⪯ e}|
    forward_[seq] = std::move(t);
  }

  // Backward pass needs outgoing message adjacency.
  std::vector<std::vector<std::uint32_t>> outgoing(order.size());
  for (const Message& m : exec.messages()) {
    outgoing[exec.topological_index(m.source)].push_back(
        exec.topological_index(m.target));
  }

  for (std::size_t seq = order.size(); seq-- > 0;) {
    const EventId e = order[seq];
    // Ceiling: e ≺ ⊤_i for every process i, so F(e)[i] <= index(⊤_i).
    VectorClock f(p_count);
    for (std::size_t i = 0; i < p_count; ++i) {
      f[i] = exec.real_count(static_cast<ProcessId>(i)) + 1;
    }
    if (e.index < exec.real_count(e.process)) {
      f.merge_min(future_[exec.topological_index({e.process, e.index + 1})]);
    }
    for (std::uint32_t dst_seq : outgoing[seq]) {
      f.merge_min(future_[dst_seq]);
    }
    f[e.process] = e.index;  // e itself is the earliest event ⪰ e on its node
    future_[seq] = std::move(f);
  }
}

const VectorClock& Timestamps::forward_ref(EventId e) const {
  SYNCON_REQUIRE(exec_->is_real(e), "forward_ref requires a real event");
  return forward_[exec_->topological_index(e)];
}

const VectorClock& Timestamps::future_start_ref(EventId e) const {
  SYNCON_REQUIRE(exec_->is_real(e), "future_start_ref requires a real event");
  return future_[exec_->topological_index(e)];
}

VectorClock Timestamps::forward(EventId e) const {
  SYNCON_REQUIRE(exec_->valid_event(e), "forward() of invalid event");
  const std::size_t p_count = exec_->process_count();
  if (exec_->is_initial(e)) {
    VectorClock t(p_count, 0);
    t[e.process] = 1;
    return t;
  }
  if (exec_->is_final(e)) {
    VectorClock t(p_count);
    for (std::size_t i = 0; i < p_count; ++i) {
      t[i] = exec_->real_count(static_cast<ProcessId>(i)) + 1;
    }
    t[e.process] = e.index + 1;  // = n_p + 2: includes ⊤_p itself
    return t;
  }
  return forward_ref(e);
}

VectorClock Timestamps::future_start(EventId e) const {
  SYNCON_REQUIRE(exec_->valid_event(e), "future_start() of invalid event");
  const std::size_t p_count = exec_->process_count();
  if (exec_->is_initial(e)) {
    // ⊥_p ≺ every non-dummy event and every ⊤_i; earliest on p is itself.
    VectorClock f(p_count, 1);
    f[e.process] = 0;
    return f;
  }
  if (exec_->is_final(e)) {
    // Nothing follows ⊤_p except itself; sentinel total_count elsewhere.
    VectorClock f(p_count);
    for (std::size_t i = 0; i < p_count; ++i) {
      f[i] = exec_->total_count(static_cast<ProcessId>(i));
    }
    f[e.process] = e.index;
    return f;
  }
  return future_start_ref(e);
}

VectorClock Timestamps::reverse(EventId e) const {
  VectorClock f = future_start(e);
  VectorClock r(exec_->process_count());
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = exec_->total_count(static_cast<ProcessId>(i)) - f[i];
  }
  return r;
}

VectorClock Timestamps::future_cut_counts(EventId e) const {
  VectorClock f = future_start(e);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = f[i] + 1;
  return f;
}

bool Timestamps::leq(EventId a, EventId b) const {
  SYNCON_REQUIRE(exec_->valid_event(a) && exec_->valid_event(b),
                 "leq() of invalid event");
  if (a == b) return true;
  if (exec_->is_initial(a)) {
    // ⊥_i precedes everything except the other initial events.
    return !(exec_->is_initial(b) && b.process != a.process);
  }
  if (exec_->is_final(a)) return false;  // nothing follows a final event
  if (exec_->is_initial(b)) return false;
  if (exec_->is_final(b)) return true;  // every non-dummy event precedes ⊤_j
  // Both real: a ⪯ b iff b knows at least index(a)+1 events of a's process.
  return forward_ref(a)[a.process] <= forward_ref(b)[a.process];
}

}  // namespace syncon
