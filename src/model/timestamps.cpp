#include "model/timestamps.hpp"

#include "model/compressed_clock.hpp"
#include "model/tree_clock.hpp"

namespace syncon {

// Compile the stamping sweep once per supported backend. Implicit
// instantiation in other translation units still works; these keep the
// three backends honest against the template even when no test touches
// one of them.
template class BasicTimestamps<VectorClock>;
template class BasicTimestamps<TreeClock>;
template class BasicTimestamps<CompressedClock>;

}  // namespace syncon
