// A recorded distributed computation (E, ≺): per-process linear sequences of
// events plus message edges. This is the "recorded trace" of the paper's
// Problem 4.
//
// Executions are immutable; construct them through ExecutionBuilder, which
// guarantees acyclicity by construction (a message can only be received by an
// event created after its send event), yielding a ready-made topological
// order for the timestamping passes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/types.hpp"

namespace syncon {

/// One message edge: send event ≺ receive event (different processes).
struct Message {
  EventId source;
  EventId target;

  friend bool operator==(const Message&, const Message&) = default;
};

class ExecutionBuilder;

class Execution {
 public:
  /// Number of processes |P|.
  std::size_t process_count() const { return processes_.size(); }

  /// Number of real (non-dummy) events of process p: n_p.
  EventIndex real_count(ProcessId p) const;

  /// Number of events of process p including ⊥_p and ⊤_p: |E_p| = n_p + 2.
  EventIndex total_count(ProcessId p) const { return real_count(p) + 2; }

  /// Total number of real events across all processes.
  std::size_t total_real_count() const { return order_.size(); }

  EventId initial(ProcessId p) const;                  // ⊥_p
  EventId final(ProcessId p) const;                    // ⊤_p
  EventId event(ProcessId p, EventIndex index) const;  // checked accessor

  bool valid_event(EventId e) const;
  bool is_initial(EventId e) const { return e.index == 0; }
  bool is_final(EventId e) const { return e.index == real_count(e.process) + 1; }
  bool is_dummy(EventId e) const { return is_initial(e) || is_final(e); }
  bool is_real(EventId e) const { return valid_event(e) && !is_dummy(e); }

  /// All real events in a topological (creation) order of ≺.
  const std::vector<EventId>& topological_order() const { return order_; }

  /// Position of a real event within topological_order().
  std::uint32_t topological_index(EventId e) const;

  /// Message edges whose receive is `e` (empty for non-receive events).
  std::span<const EventId> incoming(EventId e) const;

  /// All message edges, in creation order of their receive events.
  const std::vector<Message>& messages() const { return messages_; }

 private:
  friend class ExecutionBuilder;
  Execution() = default;

  struct ProcessInfo {
    EventIndex real_count = 0;
    std::vector<std::uint32_t> seq_by_index;  // real event index-1 -> seq
  };

  std::uint32_t seq_of(EventId e) const;  // requires is_real(e)

  std::vector<ProcessInfo> processes_;
  std::vector<EventId> order_;                  // seq -> event
  std::vector<std::vector<EventId>> incoming_;  // seq -> message sources
  std::vector<Message> messages_;
};

/// Token returned by ExecutionBuilder::send, consumed by receive. A token may
/// be received any number of times (multicast) by later events.
class MessageToken {
 public:
  EventId source() const { return source_; }

 private:
  friend class ExecutionBuilder;
  explicit MessageToken(EventId source) : source_(source) {}
  EventId source_;
};

class ExecutionBuilder {
 public:
  explicit ExecutionBuilder(std::size_t process_count);

  std::size_t process_count() const { return exec_.processes_.size(); }
  EventIndex real_count(ProcessId p) const { return exec_.real_count(p); }

  /// Appends an internal event to process p.
  EventId local(ProcessId p);

  /// Appends a send event to process p and returns the message token.
  MessageToken send(ProcessId p, EventId* event_out = nullptr);

  /// Appends a receive event to process p consuming `token`. The receiving
  /// process must differ from the sender's.
  EventId receive(ProcessId p, const MessageToken& token);

  /// Appends one event to process p that receives several messages at once
  /// (e.g. the commit point of a barrier or a gather).
  EventId receive_all(ProcessId p, std::span<const MessageToken> tokens);

  /// Appends a receive event whose message sources are given as raw event
  /// ids (used by trace deserialization). Every source must be an already
  /// built real event of another process, which preserves acyclicity.
  EventId receive_from(ProcessId p, std::span<const EventId> sources);

  /// Finalizes the execution. The builder must not be reused afterwards.
  Execution build();

 private:
  EventId append(ProcessId p, std::vector<EventId> sources);

  Execution exec_;
  bool built_ = false;
};

}  // namespace syncon
