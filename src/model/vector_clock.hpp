// Vector timestamps (Fidge/Mattern canonical vector clocks, Defn 13 of the
// paper) and the componentwise operations the paper's Lemma 16 relies on.
//
// A VectorClock of size |P| is also the representation of a *cut timestamp*
// (Defn 15): component i is the number of events of process i inside the cut.
//
// VectorClock is the *dense* backend of the clock concept (model/clock.hpp):
// a plain std::vector of components, every operation O(|P|). It is the
// default everywhere and the representation the other backends convert to at
// the dense boundary (to_dense / from_dense).
//
// Component access is the narrow read API: size() / at() for single
// components, values() for a read-only span over the dense storage, set()
// and tick() for writes. The legacy accessors — components() returning the
// raw vector and the mutable operator[] returning a raw reference — are
// deprecated (they force a backend to store a dense std::vector) and
// forward to the new API; they will be removed next release.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "model/types.hpp"

namespace syncon {

class VectorClock {
 public:
  VectorClock() = default;
  /// All components initialized to `fill`.
  explicit VectorClock(std::size_t size, ClockValue fill = 0);
  explicit VectorClock(std::vector<ClockValue> components);
  VectorClock(std::initializer_list<ClockValue> components)
      : components_(components) {}

  std::size_t size() const { return components_.size(); }

  /// Component i (bounds-checked).
  ClockValue at(std::size_t i) const;
  /// Read-only view of the dense storage (dense backend only — not part of
  /// the clock concept, which promises only size()/at()).
  std::span<const ClockValue> values() const { return components_; }
  /// Writes component i (bounds-checked).
  void set(std::size_t i, ClockValue v);
  /// Advances component i by one (the "local event on process i" step).
  void tick(std::size_t i);

  /// Read shorthand for at(i).
  ClockValue operator[](std::size_t i) const { return at(i); }

  [[deprecated("use at()/values() — backends need not store a dense vector")]]
  const std::vector<ClockValue>& components() const { return components_; }
  [[deprecated("use set()/tick() instead of writing through a reference")]]
  ClockValue& operator[](std::size_t i);

  /// this[i] = max(this[i], other[i]) for every i (Lemma 16, union of cuts).
  void merge_max(const VectorClock& other);
  /// this[i] = min(this[i], other[i]) for every i (Lemma 16, intersection).
  void merge_min(const VectorClock& other);

  /// Componentwise order: true iff this[i] <= other[i] for all i.
  bool leq(const VectorClock& other) const;
  /// Strict order of the clock lattice: leq(other) and some component is <.
  bool lt(const VectorClock& other) const;
  /// Neither leq in either direction (events: concurrent).
  bool incomparable(const VectorClock& other) const;

  /// Dense conversion boundary of the clock concept: identity here.
  VectorClock to_dense() const { return *this; }
  static VectorClock from_dense(const VectorClock& dense) { return dense; }

  /// Appends a self-delimiting serialization: varint size, then each
  /// component as a zigzag varint delta from its left neighbor (stamped
  /// clocks have strongly correlated adjacent components, so deltas stay
  /// short).
  void encode(std::vector<std::uint8_t>& out) const;
  /// Consumes one encoded clock from the front of `in`.
  static VectorClock decode(std::span<const std::uint8_t>& in);

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<ClockValue> components_;
};

std::ostream& operator<<(std::ostream& os, const VectorClock& vc);

}  // namespace syncon
