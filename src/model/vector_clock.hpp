// Vector timestamps (Fidge/Mattern canonical vector clocks, Defn 13 of the
// paper) and the componentwise operations the paper's Lemma 16 relies on.
//
// A VectorClock of size |P| is also the representation of a *cut timestamp*
// (Defn 15): component i is the number of events of process i inside the cut.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "model/types.hpp"

namespace syncon {

class VectorClock {
 public:
  VectorClock() = default;
  /// All components initialized to `fill`.
  explicit VectorClock(std::size_t size, ClockValue fill = 0);
  explicit VectorClock(std::vector<ClockValue> components);
  VectorClock(std::initializer_list<ClockValue> components)
      : components_(components) {}

  std::size_t size() const { return components_.size(); }
  ClockValue operator[](std::size_t i) const;
  ClockValue& operator[](std::size_t i);

  const std::vector<ClockValue>& components() const { return components_; }

  /// this[i] = max(this[i], other[i]) for every i (Lemma 16, union of cuts).
  void merge_max(const VectorClock& other);
  /// this[i] = min(this[i], other[i]) for every i (Lemma 16, intersection).
  void merge_min(const VectorClock& other);

  /// Componentwise order: true iff this[i] <= other[i] for all i.
  bool leq(const VectorClock& other) const;
  /// Strict order of the clock lattice: leq(other) and some component is <.
  bool lt(const VectorClock& other) const;
  /// Neither leq in either direction (events: concurrent).
  bool incomparable(const VectorClock& other) const;

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<ClockValue> components_;
};

std::ostream& operator<<(std::ostream& os, const VectorClock& vc);

/// Componentwise max of two clocks (returns a new clock).
VectorClock component_max(const VectorClock& a, const VectorClock& b);
/// Componentwise min of two clocks (returns a new clock).
VectorClock component_min(const VectorClock& a, const VectorClock& b);

}  // namespace syncon
