// Tree clock backend of the clock concept (model/clock.hpp), after "A Tree
// Clock Data Structure for Causal Orderings" (arXiv 2201.06325).
//
// A TreeClock stores the same |P| components as a dense VectorClock, but
// arranges the processes as a rooted tree that records *how* the owner
// learned each component: a child v of node u means u's process learned v's
// current value from v's process when u's local clock read aclk(v). That
// provenance makes the monotone join (merge_max during a stamping sweep)
// sublinear: while traversing the source clock top-down,
//
//   * if the target already knows the source's root at its current time,
//     the whole join is a no-op (vector clock property: component p >= t
//     implies the clock dominates everything p knew at its local time t);
//   * any subtree whose root is already known is pruned the same way;
//   * a node's children are kept sorted by aclk descending, so the scan of
//     a child list stops at the first child attached before the time the
//     target already knows — the remaining siblings are all stale.
//
// The pruning argument is only valid for clocks whose components carry that
// causal meaning. A TreeClock therefore tracks a `causal()` bit: the
// all-ones floor construction (fill == 1), copies, tick() and merge_max()
// of causal clocks keep it; any other fill, set(), merge_min(),
// from_dense() and decode() clear it, demoting the clock to dense O(|P|)
// fallback scans (still bit-identical in value to VectorClock — only the
// cost model changes). This matches the paper's usage: the forward
// (monotone) stamping sweep — floor, tick the owner, then join the
// predecessors, in that order — stays causal and fast, while the backward
// merge_min pass and arbitrary cut arithmetic run dense.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <vector>

#include "model/types.hpp"
#include "model/vector_clock.hpp"

namespace syncon {

class TreeClock {
 public:
  TreeClock() = default;
  /// All components initialized to `fill`. The clock starts causal only
  /// for the fill == 1 floor (component p = 1 means "just ⊥_p", which
  /// every stamped clock dominates; other fills assert knowledge that was
  /// never absorbed, so they start on the dense fallback paths).
  explicit TreeClock(std::size_t size, ClockValue fill = 0);

  std::size_t size() const { return nodes_.size(); }
  ClockValue at(std::size_t i) const;

  /// Arbitrary component write; demotes the clock to non-causal.
  void set(std::size_t i, ClockValue v);
  /// Advances component i by one and re-roots the tree at i. Contract (see
  /// model/clock.hpp): the clock must currently hold exactly process i's
  /// knowledge — which is precisely the stamping invariant.
  void tick(std::size_t i);

  /// Join. Sublinear pruned traversal when both sides are causal; dense
  /// componentwise scan otherwise.
  void merge_max(const TreeClock& other);
  /// Meet. Always a dense scan; the result is non-causal (a componentwise
  /// min does not dominate anyone's knowledge).
  void merge_min(const TreeClock& other);

  bool leq(const TreeClock& other) const;
  bool lt(const TreeClock& other) const;
  bool incomparable(const TreeClock& other) const;

  VectorClock to_dense() const;
  static TreeClock from_dense(const VectorClock& dense);

  void encode(std::vector<std::uint8_t>& out) const;
  static TreeClock decode(std::span<const std::uint8_t>& in);

  /// True while the pruned-join fast path is valid (diagnostics/tests).
  bool causal() const { return causal_; }
  /// Process at the tree's root (= the clock's owner after a tick).
  ProcessId root() const { return root_; }

  /// Equality is value equality — two tree clocks with different learning
  /// histories but equal components compare equal.
  friend bool operator==(const TreeClock& a, const TreeClock& b);

 private:
  static constexpr ProcessId kNone = std::numeric_limits<ProcessId>::max();

  /// One node per process; tree links are process ids.
  struct Node {
    ClockValue clk = 0;   // component value
    ClockValue aclk = 0;  // parent's clk when this node was attached
    ProcessId parent = kNone;
    ProcessId first_child = kNone;
    ProcessId next = kNone;  // sibling links, sorted by aclk descending
    ProcessId prev = kNone;
  };

  void detach(ProcessId q);
  void attach_front(ProcessId q, ProcessId parent, ClockValue aclk);
  /// Inserts q as a child of parent directly after `cursor` (kNone =
  /// front); used to keep join-attached children in descending aclk order.
  void attach_after(ProcessId q, ProcessId parent, ClockValue aclk,
                    ProcessId cursor);
  void dense_max(const TreeClock& other);
  /// Pruned top-down visit of other's subtree rooted at q. Returns true if
  /// q was updated (and therefore detached, pending re-attachment).
  bool join_visit(const TreeClock& other, ProcessId q);

  std::vector<Node> nodes_;
  ProcessId root_ = kNone;
  bool causal_ = false;
};

std::ostream& operator<<(std::ostream& os, const TreeClock& tc);

}  // namespace syncon
