#include "model/scalar_clock.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace syncon {

ScalarClocks::ScalarClocks(const Execution& exec) : exec_(&exec) {
  const auto& order = exec.topological_order();
  clocks_.resize(order.size());
  for (std::size_t seq = 0; seq < order.size(); ++seq) {
    const EventId e = order[seq];
    std::uint64_t c = 0;
    if (e.index > 1) {
      c = clocks_[exec.topological_index({e.process, e.index - 1})];
    }
    for (const EventId& src : exec.incoming(e)) {
      c = std::max(c, clocks_[exec.topological_index(src)]);
    }
    clocks_[seq] = c + 1;
    max_clock_ = std::max(max_clock_, c + 1);
  }
}

std::uint64_t ScalarClocks::at(EventId e) const {
  SYNCON_REQUIRE(exec_->is_real(e), "scalar clocks cover real events");
  return clocks_[exec_->topological_index(e)];
}

}  // namespace syncon
