#include "monitor/report.hpp"

#include <ostream>
#include <sstream>

#include "nonatomic/cut_timestamps.hpp"
#include "relations/interaction_types.hpp"
#include "sim/metrics.hpp"
#include "support/table.hpp"

namespace syncon {

void write_report(std::ostream& os, const SyncMonitor& monitor,
                  const ReportOptions& options) {
  const Execution& exec = monitor.execution();
  const ExecutionMetrics metrics = measure_execution(monitor.timestamps());

  os << "=== trace ===\n";
  TextTable trace_table({"metric", "value"});
  trace_table.new_row().add_cell(std::string("processes"))
      .add_cell(metrics.processes);
  trace_table.new_row().add_cell(std::string("events"))
      .add_cell(metrics.events);
  trace_table.new_row().add_cell(std::string("messages"))
      .add_cell(metrics.messages);
  trace_table.new_row().add_cell(std::string("message density"))
      .add_cell(metrics.message_density, 2);
  trace_table.new_row().add_cell(std::string("concurrency ratio"))
      .add_cell(metrics.concurrency_ratio, 2);
  trace_table.new_row().add_cell(std::string("critical path"))
      .add_cell(metrics.critical_path);
  trace_table.new_row().add_cell(std::string("parallelism"))
      .add_cell(metrics.parallelism, 1);
  trace_table.print(os);

  os << "\n=== intervals ===\n";
  TextTable interval_table({"label", "|X|", "|N_X|", "nodes"});
  const std::size_t n = monitor.interval_count();
  for (std::size_t i = 0; i < n; ++i) {
    const NonatomicEvent& iv = monitor.interval(monitor.handle_at(i));
    std::string nodes;
    for (const ProcessId p : iv.node_set()) {
      nodes += "p" + std::to_string(p) + " ";
    }
    interval_table.new_row()
        .add_cell(iv.label())
        .add_cell(iv.size())
        .add_cell(iv.node_count())
        .add_cell(nodes);
  }
  interval_table.print(os);

  if (options.interaction_matrix && n >= 2) {
    os << "\n=== interaction types ===\n";
    std::vector<std::string> headers{"X \\ Y"};
    for (std::size_t i = 0; i < n; ++i) {
      headers.push_back(monitor.interval(monitor.handle_at(i)).label());
    }
    TextTable matrix(std::move(headers));
    for (std::size_t x = 0; x < n; ++x) {
      matrix.new_row().add_cell(monitor.interval(monitor.handle_at(x)).label());
      const EventCuts xc(monitor.timestamps(),
                         monitor.interval(monitor.handle_at(x)));
      for (std::size_t y = 0; y < n; ++y) {
        if (x == y) {
          matrix.add_cell(std::string("."));
          continue;
        }
        const EventCuts yc(monitor.timestamps(),
                           monitor.interval(monitor.handle_at(y)));
        ComparisonCounter counter;
        matrix.add_cell(
            std::string(to_string(classify(relation_profile(xc, yc, counter)))));
      }
    }
    matrix.print(os);
  }

  if (options.headline != nullptr) {
    os << "\n=== pairs satisfying " << options.headline->to_string()
       << " ===\n";
    const auto pairs = monitor.find_pairs(*options.headline);
    TextTable pair_table({"X", "Y"});
    for (const auto& [hx, hy] : pairs) {
      pair_table.new_row()
          .add_cell(monitor.interval(hx).label())
          .add_cell(monitor.interval(hy).label());
    }
    pair_table.print(os);
    os << pairs.size() << " of " << n * (n - 1) << " ordered pairs\n";
  }
  (void)exec;
}

std::string report_to_string(const SyncMonitor& monitor,
                             const ReportOptions& options) {
  std::ostringstream oss;
  write_report(oss, monitor, options);
  return oss.str();
}

void write_online_report(std::ostream& os, const OnlineMonitor& monitor) {
  os << "=== online monitor health ===\n";
  TextTable health({"metric", "value"});
  health.new_row().add_cell(std::string("mode")).add_cell(std::string(
      monitor.degraded() ? "degraded (report feed)" : "direct"));
  // The rows come from the same health_metrics() list publish_metrics()
  // exports, so this table and the Prometheus/JSON exporters always agree.
  for (const OnlineMonitor::HealthMetric& m : monitor.health_metrics()) {
    health.new_row().add_cell(m.label).add_cell(m.value);
  }
  health.print(os);

  const auto missing = monitor.missing_reports();
  if (!missing.empty()) {
    os << "\n=== known-lost reports ===\n";
    TextTable lost({"event", "recoverable"});
    for (const EventId& e : missing) {
      lost.new_row()
          .add_cell("p" + std::to_string(e.process) + ":" +
                    std::to_string(e.index))
          .add_cell(std::string(monitor.is_crashed(e.process)
                                    ? "NO (process crashed)"
                                    : "yes (resync)"));
    }
    lost.print(os);
  }

  const auto crashed = monitor.crashed_processes();
  if (!crashed.empty()) {
    os << "\n=== crash watchdog ===\n";
    os << "crashed:";
    for (const ProcessId p : crashed) os << " p" << p;
    os << "\n";
    for (const std::string& label : monitor.doomed_actions()) {
      os << "doomed action: " << label
         << " (component events on a crashed process; it can never "
            "complete)\n";
    }
  }

  if (!monitor.waterfalls().empty()) {
    os << "\n=== detection-latency waterfalls ===\n";
    const std::vector<obs::Waterfall> falls(monitor.waterfalls().begin(),
                                            monitor.waterfalls().end());
    obs::write_waterfalls(os, falls);
  }
}

std::string online_report_to_string(const OnlineMonitor& monitor) {
  std::ostringstream oss;
  write_online_report(oss, monitor);
  return oss.str();
}

}  // namespace syncon
