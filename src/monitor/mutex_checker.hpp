// Distributed mutual-exclusion verification — the concrete use the paper's
// reference [11] demonstrates for the relation set.
//
// A critical-section occupancy is a nonatomic event (its component events
// are the holder's actions inside the CS, across the processes it touched).
// Two occupancies A, B are exclusive iff one completely precedes the other:
//   R1(U(A), L(B))  or  R1(U(B), L(A))
// ("every event of A's end proxy precedes every event of B's begin proxy").
#pragma once

#include <string>
#include <vector>

#include "monitor/monitor.hpp"

namespace syncon {

struct MutexViolation {
  std::string first;   // label of one occupancy
  std::string second;  // label of the other
};

struct MutexReport {
  std::size_t pairs_checked = 0;
  std::vector<MutexViolation> violations;

  bool ok() const { return violations.empty(); }
};

/// Checks every unordered pair of the labeled occupancies. Labels must be
/// registered in the monitor.
MutexReport check_mutual_exclusion(const SyncMonitor& monitor,
                                   const std::vector<std::string>& occupancies);

}  // namespace syncon
