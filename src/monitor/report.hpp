// One-call analysis report for a monitored trace: workload metrics, the
// interval inventory, the interaction-type matrix, and (optionally) the
// pairs satisfying a headline synchronization condition. Examples and
// operators get a uniform, greppable summary.
#pragma once

#include <iosfwd>
#include <string>

#include "monitor/monitor.hpp"
#include "monitor/predicate.hpp"
#include "online/online_monitor.hpp"

namespace syncon {

struct ReportOptions {
  /// Print the full interaction matrix (O(n²) relation profiles); switch
  /// off for very large interval sets.
  bool interaction_matrix = true;
  /// Headline condition: list all ordered pairs satisfying it.
  const SyncCondition* headline = nullptr;
};

void write_report(std::ostream& os, const SyncMonitor& monitor,
                  const ReportOptions& options = {});

std::string report_to_string(const SyncMonitor& monitor,
                             const ReportOptions& options = {});

/// Degraded-mode health report for an online monitor behind a lossy report
/// channel (DESIGN.md §3.7): feed integrity (duplicates, known-lost
/// reports), watch firings by confidence, and the crash watchdog's verdicts
/// (doomed actions, permanently unrecoverable reports).
void write_online_report(std::ostream& os, const OnlineMonitor& monitor);

std::string online_report_to_string(const OnlineMonitor& monitor);

}  // namespace syncon
