// Offline synchronization monitor: owns a recorded execution, its timestamp
// structure, and a set of labeled nonatomic events, and answers the
// application-level queries of Problem 4 (which relations hold, which pairs
// satisfy a condition).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/execution.hpp"
#include "model/timestamps.hpp"
#include "monitor/predicate.hpp"
#include "relations/batch.hpp"
#include "relations/evaluator.hpp"
#include "support/thread_pool.hpp"
#include "timing/timing_constraints.hpp"

namespace syncon {

class SyncMonitor {
 public:
  using Handle = RelationEvaluator::Handle;

  /// Takes shared ownership of the execution; stamps it once.
  explicit SyncMonitor(std::shared_ptr<const Execution> exec);

  const Execution& execution() const { return *exec_; }
  const Timestamps& timestamps() const { return *ts_; }
  const RelationEvaluator& evaluator() const { return *eval_; }

  /// Evaluates scenario queries on `pool` (nullptr restores serial
  /// evaluation). The pool must outlive the monitor; typically
  /// &ThreadPool::shared().
  void use_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Registers an interval under its label (must be unique and non-empty).
  Handle add_interval(NonatomicEvent interval);
  std::size_t interval_count() const;
  const NonatomicEvent& interval(Handle h) const;
  /// Handle of the i-th registered interval (registration order).
  Handle handle_at(std::size_t index) const;
  std::optional<Handle> find(const std::string& label) const;
  /// Handle of a label known to exist (contract otherwise).
  Handle handle(const std::string& label) const;
  std::vector<std::string> labels() const;

  /// Does `condition` hold for the ordered pair (x, y)?
  bool check(const SyncCondition& condition, Handle x, Handle y) const;
  bool check(const std::string& condition, const std::string& x,
             const std::string& y) const;

  /// All ordered pairs (x, y), x != y, satisfying the condition. Runs in
  /// parallel when a thread pool is attached; the pair list (x-major order)
  /// and the cost written to *cost are identical to the serial evaluation.
  std::vector<std::pair<Handle, Handle>> find_pairs(
      const SyncCondition& condition, QueryCost* cost = nullptr) const;

  /// All relations of R holding for (x, y) (Problem 4 ii).
  std::vector<RelationId> relations_between(Handle x, Handle y) const;

  /// Problem 4(ii) over every ordered pair of registered intervals, sharded
  /// across the attached thread pool (serial when none). The result carries
  /// the exact merged QueryCost of the sweep.
  BatchEvaluator::Result relations_all_pairs(bool pruned = true) const;

  /// Attaches a physical timeline (must belong to the same execution),
  /// enabling quantitative queries.
  void attach_times(std::shared_ptr<const PhysicalTimes> times);
  bool has_times() const { return times_ != nullptr; }
  const PhysicalTimes& times() const;

  /// Checks a relative timing constraint between two labeled intervals
  /// (requires an attached timeline).
  TimingCheckResult check_deadline(const TimingConstraint& constraint,
                                   const std::string& x,
                                   const std::string& y) const;

 private:
  std::shared_ptr<const Execution> exec_;
  std::unique_ptr<Timestamps> ts_;
  std::unique_ptr<RelationEvaluator> eval_;
  std::map<std::string, Handle> by_label_;
  std::shared_ptr<const PhysicalTimes> times_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace syncon
