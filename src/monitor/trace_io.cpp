#include "monitor/trace_io.hpp"

#include <sstream>

#include "support/contracts.hpp"

namespace syncon {

namespace {

constexpr const char* kTraceHeader = "syncon-trace 1";
constexpr const char* kIntervalHeader = "syncon-intervals 1";

std::string event_ref(const EventId& e) {
  return std::to_string(e.process) + ":" + std::to_string(e.index);
}

EventId parse_event_ref(const std::string& token, std::size_t line_no) {
  const auto colon = token.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == token.size()) {
    throw TraceFormatError(line_no, "malformed event reference", token);
  }
  try {
    const unsigned long p = std::stoul(token.substr(0, colon));
    const unsigned long i = std::stoul(token.substr(colon + 1));
    return EventId{static_cast<ProcessId>(p), static_cast<EventIndex>(i)};
  } catch (const std::exception&) {
    throw TraceFormatError(line_no, "malformed event reference", token);
  }
}

// Reads content lines (skipping blanks and comments) while tracking the
// 1-based physical line number, so every parse error can name its line.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  // Next content line; false at EOF.
  bool next(std::string& line) {
    while (std::getline(is_, line)) {
      ++number_;
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos) continue;
      if (line[pos] == '#') continue;
      return true;
    }
    ++number_;  // the (virtual) line after the last — for EOF errors
    return false;
  }

  std::size_t number() const { return number_; }

 private:
  std::istream& is_;
  std::size_t number_ = 0;
};

}  // namespace

void write_trace(std::ostream& os, const Execution& exec) {
  os << kTraceHeader << '\n';
  os << "processes " << exec.process_count() << '\n';
  for (const EventId& e : exec.topological_order()) {
    os << "e " << e.process;
    const auto sources = exec.incoming(e);
    if (!sources.empty()) {
      os << " <";
      for (const EventId& src : sources) os << ' ' << event_ref(src);
    }
    os << '\n';
  }
}

std::string trace_to_string(const Execution& exec) {
  std::ostringstream oss;
  write_trace(oss, exec);
  return oss.str();
}

Execution read_trace(std::istream& is) {
  LineReader reader(is);
  std::string line;
  if (!reader.next(line) || line != kTraceHeader) {
    throw TraceFormatError(reader.number(), "missing 'syncon-trace 1' header",
                           line);
  }
  if (!reader.next(line)) {
    throw TraceFormatError(reader.number(), "missing 'processes' record");
  }
  std::istringstream header(line);
  std::string keyword;
  std::size_t p_count = 0;
  header >> keyword >> p_count;
  if (keyword != "processes" || p_count == 0) {
    throw TraceFormatError(reader.number(), "malformed 'processes' record",
                           line);
  }

  ExecutionBuilder builder(p_count);
  while (reader.next(line)) {
    std::istringstream rec(line);
    std::string kind;
    rec >> kind;
    if (kind != "e") {
      throw TraceFormatError(reader.number(), "unknown record kind", kind);
    }
    unsigned long p_raw = p_count;
    rec >> p_raw;
    if (rec.fail() || p_raw >= p_count) {
      throw TraceFormatError(reader.number(),
                             "bad process id (trace has " +
                                 std::to_string(p_count) + " processes)",
                             line);
    }
    const auto p = static_cast<ProcessId>(p_raw);
    std::string token;
    if (rec >> token) {
      if (token != "<") {
        throw TraceFormatError(reader.number(), "expected '<' before sources",
                               token);
      }
      std::vector<EventId> sources;
      while (rec >> token) {
        sources.push_back(parse_event_ref(token, reader.number()));
      }
      if (sources.empty()) {
        throw TraceFormatError(reader.number(), "receive without sources",
                               line);
      }
      try {
        builder.receive_from(p, sources);
      } catch (const ContractViolation& e) {
        throw TraceFormatError(reader.number(),
                               std::string("invalid receive: ") + e.what());
      }
    } else {
      builder.local(p);
    }
  }
  return builder.build();
}

Execution trace_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_trace(iss);
}

void write_intervals(std::ostream& os,
                     const std::vector<NonatomicEvent>& intervals) {
  os << kIntervalHeader << '\n';
  for (const NonatomicEvent& iv : intervals) {
    SYNCON_REQUIRE(
        iv.label().find_first_of(" \t\n") == std::string::npos &&
            !iv.label().empty(),
        "interval labels must be non-empty and whitespace-free to serialize");
    os << "i " << iv.label();
    for (const EventId& e : iv.events()) os << ' ' << event_ref(e);
    os << '\n';
  }
}

std::vector<NonatomicEvent> read_intervals(std::istream& is,
                                           const Execution& exec) {
  LineReader reader(is);
  std::string line;
  if (!reader.next(line) || line != kIntervalHeader) {
    throw TraceFormatError(reader.number(),
                           "missing 'syncon-intervals 1' header", line);
  }
  std::vector<NonatomicEvent> out;
  while (reader.next(line)) {
    std::istringstream rec(line);
    std::string kind, label, token;
    rec >> kind >> label;
    if (kind != "i" || label.empty()) {
      throw TraceFormatError(reader.number(), "unknown record kind", kind);
    }
    std::vector<EventId> events;
    while (rec >> token) {
      const EventId e = parse_event_ref(token, reader.number());
      if (!exec.is_real(e)) {
        throw TraceFormatError(reader.number(),
                               "interval references unknown event", token);
      }
      events.push_back(e);
    }
    if (events.empty()) {
      throw TraceFormatError(reader.number(), "empty interval '" + label + "'");
    }
    out.emplace_back(exec, std::move(events), std::move(label));
  }
  return out;
}

void write_timed_trace(std::ostream& os, const Execution& exec,
                       const PhysicalTimes& times) {
  SYNCON_REQUIRE(&times.execution() == &exec,
                 "times belong to a different execution");
  os << kTraceHeader << '\n';
  os << "processes " << exec.process_count() << '\n';
  for (const EventId& e : exec.topological_order()) {
    os << "e " << e.process << " @" << times.at(e);
    const auto sources = exec.incoming(e);
    if (!sources.empty()) {
      os << " <";
      for (const EventId& src : sources) os << ' ' << event_ref(src);
    }
    os << '\n';
  }
}

TimedTrace read_timed_trace(std::istream& is) {
  LineReader reader(is);
  std::string line;
  if (!reader.next(line) || line != kTraceHeader) {
    throw TraceFormatError(reader.number(), "missing 'syncon-trace 1' header",
                           line);
  }
  if (!reader.next(line)) {
    throw TraceFormatError(reader.number(), "missing 'processes' record");
  }
  std::istringstream header(line);
  std::string keyword;
  std::size_t p_count = 0;
  header >> keyword >> p_count;
  if (keyword != "processes" || p_count == 0) {
    throw TraceFormatError(reader.number(), "malformed 'processes' record",
                           line);
  }

  ExecutionBuilder builder(p_count);
  std::vector<std::vector<TimePoint>> times(p_count);
  bool any_timed = false, any_untimed = false;
  while (reader.next(line)) {
    std::istringstream rec(line);
    std::string kind;
    rec >> kind;
    if (kind != "e") {
      throw TraceFormatError(reader.number(), "unknown record kind", kind);
    }
    unsigned long p_raw = p_count;
    rec >> p_raw;
    if (rec.fail() || p_raw >= p_count) {
      throw TraceFormatError(reader.number(),
                             "bad process id (trace has " +
                                 std::to_string(p_count) + " processes)",
                             line);
    }
    const auto p = static_cast<ProcessId>(p_raw);
    std::string token;
    bool timed = false;
    std::vector<EventId> sources;
    while (rec >> token) {
      if (token[0] == '@') {
        try {
          times[p].push_back(std::stoll(token.substr(1)));
        } catch (const std::exception&) {
          throw TraceFormatError(reader.number(), "bad time annotation",
                                 token);
        }
        timed = true;
      } else if (token == "<") {
        while (rec >> token) {
          sources.push_back(parse_event_ref(token, reader.number()));
        }
        if (sources.empty()) {
          throw TraceFormatError(reader.number(), "receive without sources",
                                 line);
        }
      } else {
        throw TraceFormatError(reader.number(), "unexpected token", token);
      }
    }
    (timed ? any_timed : any_untimed) = true;
    try {
      if (sources.empty()) {
        builder.local(p);
      } else {
        builder.receive_from(p, sources);
      }
    } catch (const ContractViolation& e) {
      throw TraceFormatError(reader.number(),
                             std::string("invalid receive: ") + e.what());
    }
  }
  if (any_timed && any_untimed) {
    throw TraceFormatError(reader.number(),
                           "mixed timed and untimed event records");
  }
  TimedTrace out;
  auto exec = std::make_shared<const Execution>(builder.build());
  if (any_timed) {
    try {
      out.times =
          std::make_shared<const PhysicalTimes>(*exec, std::move(times));
    } catch (const ContractViolation& e) {
      throw TraceFormatError(reader.number(),
                             std::string("invalid timeline: ") + e.what());
    }
  }
  out.execution = std::move(exec);
  return out;
}

void write_dot(std::ostream& os, const Execution& exec,
               const std::vector<NonatomicEvent>& highlight) {
  // A small qualitative palette for highlighted interval groups.
  static const char* kColors[] = {"#8dd3c7", "#fdb462", "#bebada",
                                  "#fb8072", "#80b1d3", "#b3de69"};
  auto color_of = [&](EventId e) -> const char* {
    for (std::size_t i = 0; i < highlight.size(); ++i) {
      if (highlight[i].contains(e)) {
        return kColors[i % (sizeof(kColors) / sizeof(kColors[0]))];
      }
    }
    return nullptr;
  };
  auto node_name = [](EventId e) {
    return "e" + std::to_string(e.process) + "_" + std::to_string(e.index);
  };

  os << "digraph execution {\n  rankdir=LR;\n  node [shape=circle, "
        "fontsize=10];\n";
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    os << "  subgraph cluster_p" << p << " {\n    label=\"p" << p
       << "\";\n    color=gray;\n";
    for (EventIndex k = 1; k <= exec.real_count(p); ++k) {
      const EventId e{p, k};
      os << "    " << node_name(e) << " [label=\"" << p << "." << k << "\"";
      if (const char* c = color_of(e)) {
        os << ", style=filled, fillcolor=\"" << c << "\"";
      }
      os << "];\n";
    }
    os << "  }\n";
    for (EventIndex k = 1; k + 1 <= exec.real_count(p); ++k) {
      os << "  " << node_name({p, k}) << " -> "
         << node_name({p, static_cast<EventIndex>(k + 1)}) << ";\n";
    }
  }
  for (const Message& msg : exec.messages()) {
    os << "  " << node_name(msg.source) << " -> " << node_name(msg.target)
       << " [style=dashed, color=blue];\n";
  }
  os << "}\n";
}

}  // namespace syncon
