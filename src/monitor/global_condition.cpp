#include "monitor/global_condition.hpp"

#include <algorithm>
#include <cctype>

namespace syncon {

struct GlobalCondition::Node {
  enum class Kind { Atom, Not, And, Or } kind;
  RelationId atom{};       // Kind::Atom
  std::string x, y;        // Kind::Atom: operand labels
  std::unique_ptr<Node> left, right;
};

namespace {

using Node = GlobalCondition::Node;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<Node> run() {
    auto node = parse_or();
    skip_ws();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return node;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ConditionParseError(message + " at offset " + std::to_string(pos_) +
                              " in '" + std::string(text_) + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::unique_ptr<Node> parse_or() {
    auto lhs = parse_and();
    while (consume('|')) {
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::Or;
      node->left = std::move(lhs);
      node->right = parse_and();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_and() {
    auto lhs = parse_unary();
    while (consume('&')) {
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::And;
      node->left = std::move(lhs);
      node->right = parse_unary();
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_unary() {
    if (consume('!')) {
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::Not;
      node->left = parse_unary();
      return node;
    }
    skip_ws();
    // '(' here opens a grouped sub-expression only if it does not belong to
    // an atom; atoms always start with 'R'.
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      auto inner = parse_or();
      if (!consume(')')) fail("expected ')'");
      return inner;
    }
    return parse_atom();
  }

  std::unique_ptr<Node> parse_atom() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != 'R') {
      fail("expected a relation (R1..R4')");
    }
    ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '1' || text_[pos_] > '4') {
      fail("expected a relation number 1..4");
    }
    const char digit = text_[pos_++];
    const bool primed = pos_ < text_.size() && text_[pos_] == '\'';
    if (primed) ++pos_;
    Relation rel{};
    switch (digit) {
      case '1': rel = primed ? Relation::R1p : Relation::R1; break;
      case '2': rel = primed ? Relation::R2p : Relation::R2; break;
      case '3': rel = primed ? Relation::R3p : Relation::R3; break;
      default: rel = primed ? Relation::R4p : Relation::R4; break;
    }
    ProxyKind px = ProxyKind::End;
    ProxyKind py = ProxyKind::Begin;
    if (consume('[')) {
      px = parse_proxy();
      if (!consume(',')) fail("expected ',' between proxies");
      py = parse_proxy();
      if (!consume(']')) fail("expected ']' after proxies");
    }
    if (!consume('(')) fail("expected '(' before operand labels");
    auto node = std::make_unique<Node>();
    node->kind = Node::Kind::Atom;
    node->atom = RelationId{rel, px, py};
    node->x = parse_label();
    if (!consume(',')) fail("expected ',' between operand labels");
    node->y = parse_label();
    if (!consume(')')) fail("expected ')' after operand labels");
    return node;
  }

  ProxyKind parse_proxy() {
    skip_ws();
    if (pos_ < text_.size() && (text_[pos_] == 'L' || text_[pos_] == 'U')) {
      return text_[pos_++] == 'L' ? ProxyKind::Begin : ProxyKind::End;
    }
    fail("expected proxy L or U");
  }

  std::string parse_label() {
    skip_ws();
    std::string label;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
          c == ')' || c == '(') {
        break;
      }
      label += c;
      ++pos_;
    }
    if (label.empty()) fail("expected an interval label");
    return label;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool evaluate_node(const Node& node, const SyncMonitor& monitor) {
  switch (node.kind) {
    case Node::Kind::Atom:
      return monitor.evaluator().holds(node.atom, monitor.handle(node.x),
                                       monitor.handle(node.y));
    case Node::Kind::Not:
      return !evaluate_node(*node.left, monitor);
    case Node::Kind::And:
      return evaluate_node(*node.left, monitor) &&
             evaluate_node(*node.right, monitor);
    case Node::Kind::Or:
      return evaluate_node(*node.left, monitor) ||
             evaluate_node(*node.right, monitor);
  }
  return false;
}

void collect_labels(const Node& node, std::vector<std::string>& out) {
  switch (node.kind) {
    case Node::Kind::Atom:
      out.push_back(node.x);
      out.push_back(node.y);
      return;
    case Node::Kind::Not:
      collect_labels(*node.left, out);
      return;
    case Node::Kind::And:
    case Node::Kind::Or:
      collect_labels(*node.left, out);
      collect_labels(*node.right, out);
      return;
  }
}

void render_node(const Node& node, std::string& out) {
  switch (node.kind) {
    case Node::Kind::Atom:
      out += to_string(node.atom.relation);
      out += '[';
      out += to_string(node.atom.proxy_x);
      out += ',';
      out += to_string(node.atom.proxy_y);
      out += "](";
      out += node.x;
      out += ',';
      out += node.y;
      out += ')';
      return;
    case Node::Kind::Not:
      out += '!';
      render_node(*node.left, out);
      return;
    case Node::Kind::And:
    case Node::Kind::Or:
      out += '(';
      render_node(*node.left, out);
      out += node.kind == Node::Kind::And ? " & " : " | ";
      render_node(*node.right, out);
      out += ')';
      return;
  }
}

}  // namespace

GlobalCondition::GlobalCondition(std::unique_ptr<Node> root)
    : root_(std::move(root)) {}
GlobalCondition::GlobalCondition(GlobalCondition&&) noexcept = default;
GlobalCondition& GlobalCondition::operator=(GlobalCondition&&) noexcept =
    default;
GlobalCondition::~GlobalCondition() = default;

GlobalCondition GlobalCondition::parse(std::string_view text) {
  return GlobalCondition(Parser(text).run());
}

bool GlobalCondition::evaluate(const SyncMonitor& monitor) const {
  return evaluate_node(*root_, monitor);
}

std::vector<std::string> GlobalCondition::labels() const {
  std::vector<std::string> out;
  collect_labels(*root_, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string GlobalCondition::to_string() const {
  std::string out;
  render_node(*root_, out);
  return out;
}

}  // namespace syncon
