// Multi-interval synchronization specifications: boolean formulas whose
// atoms name the intervals they constrain, so one condition can range over
// the whole interval set — the "distributed predicate specification" use
// of [11] generalized beyond a single (X, Y) pair.
//
// Grammar (extends the pairwise SyncCondition language):
//   expr  := and ('|' and)*
//   and   := unary ('&' unary)*
//   unary := '!' unary | '(' expr ')' | atom
//   atom  := REL [ '[' PROXY ',' PROXY ']' ] '(' label ',' label ')'
//   REL   := R1 | R1' | R2 | R2' | R3 | R3' | R4 | R4'
//   PROXY := L | U          (default [U, L], as in SyncCondition)
//   label := any run of characters except whitespace, ',', ')', '(' —
//            must name an interval registered in the monitor.
//
// Example: "R1[U,L](detect, engage) & !R4(engage, detect)".
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "monitor/monitor.hpp"
#include "monitor/predicate.hpp"

namespace syncon {

class GlobalCondition {
 public:
  /// Parses the specification; throws ConditionParseError on bad syntax.
  static GlobalCondition parse(std::string_view text);

  GlobalCondition(GlobalCondition&&) noexcept;
  GlobalCondition& operator=(GlobalCondition&&) noexcept;
  ~GlobalCondition();

  /// Evaluates against the monitor's registered intervals. Unknown labels
  /// raise ContractViolation (via SyncMonitor::handle).
  bool evaluate(const SyncMonitor& monitor) const;

  /// Every interval label the condition mentions (sorted, unique).
  std::vector<std::string> labels() const;

  std::string to_string() const;

  struct Node;

 private:
  explicit GlobalCondition(std::unique_ptr<Node> root);
  std::unique_ptr<Node> root_;
};

}  // namespace syncon
