// A small boolean language over the 32 causality relations, used to state
// application-level synchronization conditions on a pair of nonatomic
// events (X, Y) — e.g. the distributed-predicate specifications of [11].
//
// Grammar:
//   expr  := and ('|' and)*
//   and   := unary ('&' unary)*
//   unary := '!' unary | '(' expr ')' | atom
//   atom  := REL [ '(' PROXY ',' PROXY ')' ]
//   REL   := R1 | R1' | R2 | R2' | R3 | R3' | R4 | R4'
//   PROXY := L | U
// A bare REL defaults to proxies (U, L): "the end of X relates to the
// beginning of Y", the usual reading of interval precedence.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "relations/evaluator.hpp"
#include "relations/relation.hpp"

namespace syncon {

class ConditionParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SyncCondition {
 public:
  /// Parses the textual condition; throws ConditionParseError.
  static SyncCondition parse(std::string_view text);

  /// Convenience: a single-relation condition.
  static SyncCondition atom(RelationId id);

  SyncCondition(SyncCondition&&) noexcept;
  SyncCondition& operator=(SyncCondition&&) noexcept;
  ~SyncCondition();

  /// Evaluates the condition on the ordered pair (x, y) with the fast
  /// (Theorem 20) relation evaluator. The cost of every atom goes to *cost
  /// when given (one sink per thread makes this thread-safe), otherwise to
  /// the evaluator's shared tally.
  bool evaluate(const RelationEvaluator& eval, EventHandle x, EventHandle y,
                QueryCost* cost = nullptr) const;

  /// Canonical rendering (fully parenthesized atoms).
  std::string to_string() const;

  struct Node;

 private:
  explicit SyncCondition(std::unique_ptr<Node> root);
  std::unique_ptr<Node> root_;
};

}  // namespace syncon
