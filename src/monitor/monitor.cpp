#include "monitor/monitor.hpp"

#include "support/contracts.hpp"

namespace syncon {

SyncMonitor::SyncMonitor(std::shared_ptr<const Execution> exec)
    : exec_(std::move(exec)) {
  SYNCON_REQUIRE(exec_ != nullptr, "monitor needs an execution");
  ts_ = std::make_unique<Timestamps>(*exec_);
  eval_ = std::make_unique<RelationEvaluator>(*ts_);
}

SyncMonitor::Handle SyncMonitor::add_interval(NonatomicEvent interval) {
  SYNCON_REQUIRE(&interval.execution() == exec_.get(),
                 "interval belongs to a different execution");
  const std::string& label = interval.label();
  SYNCON_REQUIRE(!label.empty(), "monitored intervals need a label");
  SYNCON_REQUIRE(!by_label_.count(label),
                 "duplicate interval label '" + label + "'");
  const Handle h = eval_->add_event(std::move(interval));
  by_label_.emplace(eval_->event(h).label(), h);
  return h;
}

std::size_t SyncMonitor::interval_count() const {
  return eval_->event_count();
}

const NonatomicEvent& SyncMonitor::interval(Handle h) const {
  return eval_->event(h);
}

std::optional<SyncMonitor::Handle> SyncMonitor::find(
    const std::string& label) const {
  const auto it = by_label_.find(label);
  if (it == by_label_.end()) return std::nullopt;
  return it->second;
}

SyncMonitor::Handle SyncMonitor::handle(const std::string& label) const {
  const auto h = find(label);
  SYNCON_REQUIRE(h.has_value(), "no interval labeled '" + label + "'");
  return *h;
}

std::vector<std::string> SyncMonitor::labels() const {
  std::vector<std::string> out;
  out.reserve(by_label_.size());
  for (const auto& [label, handle] : by_label_) out.push_back(label);
  return out;
}

bool SyncMonitor::check(const SyncCondition& condition, Handle x,
                        Handle y) const {
  return condition.evaluate(*eval_, x, y);
}

bool SyncMonitor::check(const std::string& condition, const std::string& x,
                        const std::string& y) const {
  return check(SyncCondition::parse(condition), handle(x), handle(y));
}

std::vector<std::pair<SyncMonitor::Handle, SyncMonitor::Handle>>
SyncMonitor::find_pairs(const SyncCondition& condition) const {
  std::vector<std::pair<Handle, Handle>> out;
  const std::size_t n = eval_->event_count();
  for (Handle x = 0; x < n; ++x) {
    for (Handle y = 0; y < n; ++y) {
      if (x != y && condition.evaluate(*eval_, x, y)) out.emplace_back(x, y);
    }
  }
  return out;
}

std::vector<RelationId> SyncMonitor::relations_between(Handle x,
                                                       Handle y) const {
  return eval_->all_holding_pruned(x, y).holding;
}

void SyncMonitor::attach_times(std::shared_ptr<const PhysicalTimes> times) {
  SYNCON_REQUIRE(times != nullptr, "attach_times needs a timeline");
  SYNCON_REQUIRE(&times->execution() == exec_.get(),
                 "timeline belongs to a different execution");
  times_ = std::move(times);
}

const PhysicalTimes& SyncMonitor::times() const {
  SYNCON_REQUIRE(times_ != nullptr, "no timeline attached");
  return *times_;
}

TimingCheckResult SyncMonitor::check_deadline(
    const TimingConstraint& constraint, const std::string& x,
    const std::string& y) const {
  return check_constraint(times(), constraint, interval(handle(x)),
                          interval(handle(y)));
}

}  // namespace syncon
