#include "monitor/monitor.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace syncon {

SyncMonitor::SyncMonitor(std::shared_ptr<const Execution> exec)
    : exec_(std::move(exec)) {
  SYNCON_REQUIRE(exec_ != nullptr, "monitor needs an execution");
  ts_ = std::make_unique<Timestamps>(*exec_);
  eval_ = std::make_unique<RelationEvaluator>(*ts_);
}

SyncMonitor::Handle SyncMonitor::add_interval(NonatomicEvent interval) {
  SYNCON_REQUIRE(&interval.execution() == exec_.get(),
                 "interval belongs to a different execution");
  const std::string& label = interval.label();
  SYNCON_REQUIRE(!label.empty(), "monitored intervals need a label");
  SYNCON_REQUIRE(!by_label_.count(label),
                 "duplicate interval label '" + label + "'");
  const Handle h = eval_->add_event(std::move(interval));
  by_label_.emplace(eval_->event(h).label(), h);
  return h;
}

std::size_t SyncMonitor::interval_count() const {
  return eval_->event_count();
}

const NonatomicEvent& SyncMonitor::interval(Handle h) const {
  return eval_->event(h);
}

SyncMonitor::Handle SyncMonitor::handle_at(std::size_t index) const {
  return eval_->handle_at(index);
}

std::optional<SyncMonitor::Handle> SyncMonitor::find(
    const std::string& label) const {
  const auto it = by_label_.find(label);
  if (it == by_label_.end()) return std::nullopt;
  return it->second;
}

SyncMonitor::Handle SyncMonitor::handle(const std::string& label) const {
  const auto h = find(label);
  SYNCON_REQUIRE(h.has_value(), "no interval labeled '" + label + "'");
  return *h;
}

std::vector<std::string> SyncMonitor::labels() const {
  std::vector<std::string> out;
  out.reserve(by_label_.size());
  for (const auto& [label, handle] : by_label_) out.push_back(label);
  return out;
}

bool SyncMonitor::check(const SyncCondition& condition, Handle x,
                        Handle y) const {
  return condition.evaluate(*eval_, x, y);
}

bool SyncMonitor::check(const std::string& condition, const std::string& x,
                        const std::string& y) const {
  return check(SyncCondition::parse(condition), handle(x), handle(y));
}

std::vector<std::pair<SyncMonitor::Handle, SyncMonitor::Handle>>
SyncMonitor::find_pairs(const SyncCondition& condition,
                        QueryCost* cost) const {
  const std::vector<Handle> hs = eval_->handles();
  std::vector<std::pair<Handle, Handle>> pairs;
  pairs.reserve(hs.size() * hs.size());
  for (const Handle& x : hs) {
    for (const Handle& y : hs) {
      if (x != y) pairs.emplace_back(x, y);
    }
  }

  const std::size_t shards =
      pool_ == nullptr ? 1 : std::min(pool_->thread_count(),
                                      std::max<std::size_t>(pairs.size(), 1));
  std::vector<std::vector<std::pair<Handle, Handle>>> matched(shards);
  std::vector<QueryCost> shard_costs(shards);
  auto run_range = [&](std::size_t shard, std::size_t begin,
                       std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& [x, y] = pairs[i];
      if (condition.evaluate(*eval_, x, y, &shard_costs[shard])) {
        matched[shard].emplace_back(x, y);
      }
    }
  };
  if (shards == 1) {
    run_range(0, 0, pairs.size());
  } else {
    pool_->parallel_for(pairs.size(), run_range, shards);
  }

  // Concatenate in shard order: shards are contiguous x-major ranges, so
  // the output order matches the serial scan exactly.
  std::vector<std::pair<Handle, Handle>> out;
  QueryCost total;
  for (std::size_t s = 0; s < shards; ++s) {
    out.insert(out.end(), matched[s].begin(), matched[s].end());
    total += shard_costs[s];
  }
  if (cost != nullptr) {
    *cost += total;
  } else {
    eval_->charge(total);  // keep accumulated_cost() meaningful
  }
  return out;
}

std::vector<RelationId> SyncMonitor::relations_between(Handle x,
                                                       Handle y) const {
  return eval_->all_holding_pruned(x, y).holding;
}

BatchEvaluator::Result SyncMonitor::relations_all_pairs(bool pruned) const {
  return BatchEvaluator(*eval_, pool_).all_pairs(pruned);
}

void SyncMonitor::attach_times(std::shared_ptr<const PhysicalTimes> times) {
  SYNCON_REQUIRE(times != nullptr, "attach_times needs a timeline");
  SYNCON_REQUIRE(&times->execution() == exec_.get(),
                 "timeline belongs to a different execution");
  times_ = std::move(times);
}

const PhysicalTimes& SyncMonitor::times() const {
  SYNCON_REQUIRE(times_ != nullptr, "no timeline attached");
  return *times_;
}

TimingCheckResult SyncMonitor::check_deadline(
    const TimingConstraint& constraint, const std::string& x,
    const std::string& y) const {
  return check_constraint(times(), constraint, interval(handle(x)),
                          interval(handle(y)));
}

}  // namespace syncon
