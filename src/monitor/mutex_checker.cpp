#include "monitor/mutex_checker.hpp"

namespace syncon {

MutexReport check_mutual_exclusion(
    const SyncMonitor& monitor, const std::vector<std::string>& occupancies) {
  const RelationId ends_before{Relation::R1, ProxyKind::End,
                               ProxyKind::Begin};
  MutexReport report;
  for (std::size_t i = 0; i < occupancies.size(); ++i) {
    for (std::size_t j = i + 1; j < occupancies.size(); ++j) {
      ++report.pairs_checked;
      const auto a = monitor.handle(occupancies[i]);
      const auto b = monitor.handle(occupancies[j]);
      const bool a_first = monitor.evaluator().holds(ends_before, a, b);
      const bool b_first = monitor.evaluator().holds(ends_before, b, a);
      if (!a_first && !b_first) {
        report.violations.push_back(
            MutexViolation{occupancies[i], occupancies[j]});
      }
    }
  }
  return report;
}

}  // namespace syncon
