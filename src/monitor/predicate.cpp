#include "monitor/predicate.hpp"

#include <cctype>
#include <utility>
#include <vector>

namespace syncon {

struct SyncCondition::Node {
  enum class Kind { Atom, Not, And, Or } kind;
  RelationId atom{};                  // Kind::Atom
  std::unique_ptr<Node> left, right;  // Not uses left only
};

namespace {

using Node = SyncCondition::Node;

std::unique_ptr<Node> make_atom(RelationId id) {
  auto n = std::make_unique<Node>();
  n->kind = Node::Kind::Atom;
  n->atom = id;
  return n;
}

std::unique_ptr<Node> make_unary(Node::Kind kind, std::unique_ptr<Node> a) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  n->left = std::move(a);
  return n;
}

std::unique_ptr<Node> make_binary(Node::Kind kind, std::unique_ptr<Node> a,
                                  std::unique_ptr<Node> b) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  n->left = std::move(a);
  n->right = std::move(b);
  return n;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<Node> run() {
    auto node = parse_or();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("unexpected trailing input");
    }
    return node;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ConditionParseError(message + " at offset " + std::to_string(pos_) +
                              " in '" + std::string(text_) + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::unique_ptr<Node> parse_or() {
    auto lhs = parse_and();
    while (consume('|')) {
      lhs = make_binary(Node::Kind::Or, std::move(lhs), parse_and());
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_and() {
    auto lhs = parse_unary();
    while (consume('&')) {
      lhs = make_binary(Node::Kind::And, std::move(lhs), parse_unary());
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_unary() {
    if (consume('!')) {
      return make_unary(Node::Kind::Not, parse_unary());
    }
    if (consume('(')) {
      auto inner = parse_or();
      if (!consume(')')) fail("expected ')'");
      return inner;
    }
    return parse_atom();
  }

  std::unique_ptr<Node> parse_atom() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != 'R') {
      fail("expected a relation (R1..R4')");
    }
    ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '1' || text_[pos_] > '4') {
      fail("expected a relation number 1..4");
    }
    const char digit = text_[pos_++];
    const bool primed = pos_ < text_.size() && text_[pos_] == '\'';
    if (primed) ++pos_;

    Relation rel{};
    switch (digit) {
      case '1': rel = primed ? Relation::R1p : Relation::R1; break;
      case '2': rel = primed ? Relation::R2p : Relation::R2; break;
      case '3': rel = primed ? Relation::R3p : Relation::R3; break;
      case '4': rel = primed ? Relation::R4p : Relation::R4; break;
      default: fail("unreachable");
    }

    // Optional proxy pair; default (U, L).
    ProxyKind px = ProxyKind::End;
    ProxyKind py = ProxyKind::Begin;
    const std::size_t saved = pos_;
    if (consume('(')) {
      if (!parse_proxy(px)) {
        // Not a proxy list — could be a parenthesized expression after an
        // implicit atom (e.g. "R1 & (…)"); rewind.
        pos_ = saved;
      } else {
        if (!consume(',')) fail("expected ',' between proxies");
        if (!parse_proxy(py)) fail("expected proxy L or U");
        if (!consume(')')) fail("expected ')' after proxies");
      }
    }
    return make_atom(RelationId{rel, px, py});
  }

  bool parse_proxy(ProxyKind& out) {
    skip_ws();
    if (pos_ < text_.size() && (text_[pos_] == 'L' || text_[pos_] == 'U')) {
      out = text_[pos_] == 'L' ? ProxyKind::Begin : ProxyKind::End;
      ++pos_;
      return true;
    }
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool evaluate_node(const Node& node, const RelationEvaluator& eval,
                   EventHandle x, EventHandle y, QueryCost* cost) {
  switch (node.kind) {
    case Node::Kind::Atom:
      return eval.holds(node.atom, x, y, cost);
    case Node::Kind::Not:
      return !evaluate_node(*node.left, eval, x, y, cost);
    case Node::Kind::And:
      return evaluate_node(*node.left, eval, x, y, cost) &&
             evaluate_node(*node.right, eval, x, y, cost);
    case Node::Kind::Or:
      return evaluate_node(*node.left, eval, x, y, cost) ||
             evaluate_node(*node.right, eval, x, y, cost);
  }
  return false;
}

void render_node(const Node& node, std::string& out) {
  switch (node.kind) {
    case Node::Kind::Atom: {
      out += to_string(node.atom.relation);
      out += '(';
      out += to_string(node.atom.proxy_x);
      out += ',';
      out += to_string(node.atom.proxy_y);
      out += ')';
      return;
    }
    case Node::Kind::Not:
      out += '!';
      render_node(*node.left, out);
      return;
    case Node::Kind::And:
    case Node::Kind::Or:
      out += '(';
      render_node(*node.left, out);
      out += node.kind == Node::Kind::And ? " & " : " | ";
      render_node(*node.right, out);
      out += ')';
      return;
  }
}

}  // namespace

SyncCondition::SyncCondition(std::unique_ptr<Node> root)
    : root_(std::move(root)) {}
SyncCondition::SyncCondition(SyncCondition&&) noexcept = default;
SyncCondition& SyncCondition::operator=(SyncCondition&&) noexcept = default;
SyncCondition::~SyncCondition() = default;

SyncCondition SyncCondition::parse(std::string_view text) {
  return SyncCondition(Parser(text).run());
}

SyncCondition SyncCondition::atom(RelationId id) {
  return SyncCondition(make_atom(id));
}

bool SyncCondition::evaluate(const RelationEvaluator& eval, EventHandle x,
                             EventHandle y, QueryCost* cost) const {
  return evaluate_node(*root_, eval, x, y, cost);
}

std::string SyncCondition::to_string() const {
  std::string out;
  render_node(*root_, out);
  return out;
}

}  // namespace syncon
