// Plain-text serialization of executions and interval sets, so recorded
// traces can be stored, shipped, and re-analyzed (the workflow Problem 4
// assumes).
//
// Trace format (one record per line, '#' starts a comment):
//   syncon-trace 1
//   processes <P>
//   e <process>                         -- local/send event
//   e <process> < <p>:<i> [<p>:<i> …]   -- receive event with its sources
// Events appear in a topological order; indices are implicit (events of a
// process are numbered 1.. in order of appearance).
//
// Interval-set format:
//   syncon-intervals 1
//   i <label> <p>:<i> [<p>:<i> …]       -- label must contain no whitespace
#pragma once

#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/execution.hpp"
#include "nonatomic/interval.hpp"
#include "timing/physical_time.hpp"

namespace syncon {

/// Thrown on malformed trace/interval input. what() always pinpoints the
/// failure as "line <N>: <problem> [near '<token>']"; the raw location and
/// offending token are also available structurally.
class TraceFormatError : public std::runtime_error {
 public:
  explicit TraceFormatError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
  TraceFormatError(std::size_t line, const std::string& problem,
                   const std::string& token = "")
      : std::runtime_error("line " + std::to_string(line) + ": " + problem +
                           (token.empty() ? "" : " near '" + token + "'")),
        line_(line),
        token_(token) {}

  /// 1-based input line the failure was detected on (0 if unknown).
  std::size_t line() const { return line_; }
  /// The token that failed to parse ("" when the whole line is at fault).
  const std::string& token() const { return token_; }

 private:
  std::size_t line_ = 0;
  std::string token_;
};

void write_trace(std::ostream& os, const Execution& exec);
std::string trace_to_string(const Execution& exec);

Execution read_trace(std::istream& is);
Execution trace_from_string(const std::string& text);

void write_intervals(std::ostream& os,
                     const std::vector<NonatomicEvent>& intervals);
std::vector<NonatomicEvent> read_intervals(std::istream& is,
                                           const Execution& exec);

/// Graphviz export: one cluster per process line, message edges dashed,
/// and (optionally) nonatomic events as colored node groups — handy for
/// inspecting small traces visually.
void write_dot(std::ostream& os, const Execution& exec,
               const std::vector<NonatomicEvent>& highlight = {});

/// Timed variant of the trace format: every event record carries a physical
/// timestamp annotation, `e <p> @<µs> [< sources]`.
void write_timed_trace(std::ostream& os, const Execution& exec,
                       const PhysicalTimes& times);

/// Result of reading a (possibly) timed trace; `times` is null when the
/// input had no @-annotations. Mixing annotated and plain events is an
/// error.
struct TimedTrace {
  std::shared_ptr<const Execution> execution;
  std::shared_ptr<const PhysicalTimes> times;
};

TimedTrace read_timed_trace(std::istream& is);

}  // namespace syncon
