#include "obs/metrics.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace syncon::obs {

std::uint64_t Counter::total() const {
  std::uint64_t sum = 0;
  for (const Slot& s : slots_) sum += s.value.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (Slot& s : slots_) s.value.store(0, std::memory_order_relaxed);
}

HistogramSpec HistogramSpec::exponential(double lo, double hi,
                                         double factor) {
  SYNCON_REQUIRE(lo > 0.0 && hi >= lo, "bounds must satisfy 0 < lo <= hi");
  SYNCON_REQUIRE(factor > 1.0, "exponential buckets need factor > 1");
  HistogramSpec spec;
  for (double b = lo; true; b *= factor) {
    spec.bounds.push_back(b);
    if (b >= hi) break;
  }
  return spec;
}

HistogramSpec HistogramSpec::linear(double lo, double step, std::size_t n) {
  SYNCON_REQUIRE(step > 0.0, "linear buckets need step > 0");
  SYNCON_REQUIRE(n > 0, "need at least one bucket bound");
  HistogramSpec spec;
  spec.bounds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    spec.bounds.push_back(lo + step * static_cast<double>(i));
  }
  return spec;
}

Histogram::Histogram(HistogramSpec spec) : spec_(std::move(spec)) {
  SYNCON_REQUIRE(!spec_.bounds.empty(), "histogram needs bucket bounds");
  SYNCON_REQUIRE(
      std::is_sorted(spec_.bounds.begin(), spec_.bounds.end()) &&
          std::adjacent_find(spec_.bounds.begin(), spec_.bounds.end()) ==
              spec_.bounds.end(),
      "histogram bounds must be strictly ascending");
  shards_.reserve(kMetricShards);
  for (std::size_t s = 0; s < kMetricShards; ++s) {
    shards_.push_back(std::make_unique<Shard>(spec_.bounds.size() + 1));
  }
}

void Histogram::record(double value, std::size_t shard) {
  Shard& s = *shards_[shard % kMetricShards];
  // First bucket whose bound is >= value (`le` semantics); past the last
  // bound the sample lands in the +Inf overflow bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(spec_.bounds.begin(), spec_.bounds.end(), value) -
      spec_.bounds.begin());
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  double seen = s.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !s.min.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
  seen = s.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !s.max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = spec_.bounds;
  snap.counts.assign(spec_.bounds.size() + 1, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_) {  // shard order: deterministic sum
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += shard->counts[b].load(std::memory_order_relaxed);
    }
    snap.count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    min = std::min(min, shard->min.load(std::memory_order_relaxed));
    max = std::max(max, shard->max.load(std::memory_order_relaxed));
  }
  snap.min = snap.count == 0 ? 0.0 : min;
  snap.max = snap.count == 0 ? 0.0 : max;
  return snap;
}

void Histogram::reset() {
  for (const auto& shard : shards_) {
    for (auto& c : shard->counts) c.store(0, std::memory_order_relaxed);
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0.0, std::memory_order_relaxed);
    shard->min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    shard->max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
  }
}

double HistogramSnapshot::quantile(double q) const {
  SYNCON_REQUIRE(count > 0, "quantile of empty histogram");
  SYNCON_REQUIRE(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[b];
    if (static_cast<double>(cumulative) >= rank) {
      double lower = b == 0 ? min : std::max(min, bounds[b - 1]);
      double upper = b == bounds.size() ? max : std::min(max, bounds[b]);
      if (b == bounds.size() && max < lower) {
        // Overflow bucket of a snapshot whose min/max were never tracked
        // (hand-assembled or merged from bucket counts alone): anchor the
        // open-ended bucket at its lower bound instead of interpolating
        // toward a stale max below it.
        upper = lower;
      }
      // Degenerate snapshots (again: hand-assembled) can present
      // upper < lower; interpolation must never run backwards.
      upper = std::max(upper, lower);
      const double frac =
          (rank - before) / static_cast<double>(counts[b]);
      const double value = lower + frac * (upper - lower);
      // Clamp to the observed [min, max] only when that range is coherent
      // with the bucket the rank landed in; a stale range must not squash
      // the interpolated value back below the bucket.
      return min <= max && max >= lower ? std::clamp(value, min, max) : value;
    }
  }
  return max;
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    std::string_view name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  const Entry* e = find(name);
  SYNCON_REQUIRE(e != nullptr && e->kind == Kind::Counter,
                 "no counter named '" + std::string(name) + "'");
  return e->counter_value;
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

Counter& MetricRegistry::counter(std::string_view name) {
  SYNCON_REQUIRE(!name.empty(), "metrics need a name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  SYNCON_REQUIRE(!name.empty(), "metrics need a name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     const HistogramSpec& spec) {
  SYNCON_REQUIRE(!name.empty(), "metrics need a name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(spec))
             .first;
  } else {
    SYNCON_REQUIRE(it->second->spec() == spec,
                   "histogram '" + std::string(name) +
                       "' re-registered with a different bucket layout");
  }
  return *it->second;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  // The three maps are each name-sorted; a final sort merges them.
  for (const auto& [name, c] : counters_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::Counter;
    e.counter_value = c->total();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::Gauge;
    e.gauge_value = g->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::Histogram;
    e.histogram = h->snapshot();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace syncon::obs
