#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "support/contracts.hpp"

namespace syncon::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            epoch)
          .count());
}

std::uint32_t current_thread_slot() {
  static std::mutex mutex;
  static std::uint32_t next = 0;
  thread_local std::uint32_t slot = [] {
    std::lock_guard<std::mutex> lock(mutex);
    return next++;
  }();
  return slot;
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  SYNCON_REQUIRE(capacity > 0, "trace recorder needs capacity >= 1");
  ring_.reserve(capacity_);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  SYNCON_REQUIRE(capacity > 0, "trace recorder needs capacity >= 1");
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  total_ = 0;
}

std::size_t TraceRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void TraceRecorder::record(const char* name, std::uint64_t start_us,
                           std::uint64_t duration_us) {
  const SpanEvent event{name, start_us, duration_us, current_thread_slot()};
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;  // overwrite the oldest
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<SpanEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::recorded_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::vector<SpanStats> aggregate_spans(const TraceRecorder& recorder) {
  std::map<std::string, SpanStats> by_name;
  for (const SpanEvent& e : recorder.events()) {
    SpanStats& s = by_name[e.name];
    if (s.count == 0) s.name = e.name;
    ++s.count;
    s.total_us += e.duration_us;
    s.max_us = std::max(s.max_us, e.duration_us);
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, stats] : by_name) out.push_back(std::move(stats));
  return out;
}

}  // namespace syncon::obs
