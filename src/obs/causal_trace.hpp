// Causal trace export (DESIGN.md §3.13): render a monitored run as an
// OpenTelemetry-shaped distributed trace. The execution is already a
// timestamped partial order, so the mapping is direct —
//
//   process p       → one root span per process lane
//   event (p, i)    → child span of p's process span
//   message f → e   → child span of the send event, ending at the receive
//   interval X      → span over [least, greatest] component event times
//   verdict firing  → span tree of its latency waterfall stages
//   flight records  → resync / compact / recovery / quarantine marker spans
//
// with happens-before rendered as OTel "follows-from" links: for every
// causal edge (local predecessor, message source) the link is emitted iff
// the vector clocks actually order the two events — the links are *derived
// from clock comparisons*, not from the builder's structural knowledge, so
// verify_causal_consistency can property-check span reachability against
// the clock order bit for bit.
//
// Export forms: the existing Chrome trace-event JSON (Perfetto /
// chrome://tracing; follows-from rendered as flow arrows) and an OTLP-style
// JSON document (resourceSpans → scopeSpans → spans with hex ids + links).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "model/execution.hpp"
#include "model/timestamps.hpp"
#include "model/types.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"

namespace syncon {
class NonatomicEvent;
}  // namespace syncon

namespace syncon::obs {

/// One span. Ids are deterministic functions of what the span denotes, so
/// the same run always exports the same trace bit for bit.
struct CausalSpan {
  std::uint64_t id = 0;       // nonzero
  std::uint64_t parent = 0;   // 0 = root
  std::string name;
  std::string kind;           // process|event|message|interval|verdict|stage|…
  std::uint32_t process = 0;  // owning lane (kNoLane for cross-cutting spans)
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::vector<std::uint64_t> follows_from;  // span ids, happens-before links
  std::vector<std::pair<std::string, std::string>> attributes;

  static constexpr std::uint32_t kNoLane = 0xffffffffu;
};

struct CausalTrace {
  std::string trace_id;  // 32 hex digits, deterministic per run shape
  std::vector<CausalSpan> spans;

  const CausalSpan* find(std::uint64_t id) const;
};

struct CausalTraceOptions {
  bool event_spans = true;
  bool message_spans = true;
  /// Events carry no wall time in an offline Execution; spans are laid out
  /// on a synthetic timeline, one step per topological position.
  std::uint64_t synthetic_step_us = 10;
};

/// Deterministic span ids (exposed for tests and cross-referencing).
std::uint64_t process_span_id(ProcessId p);
std::uint64_t event_span_id(EventId e);
std::uint64_t message_span_id(EventId send);

/// Maps an execution and its vector clocks into the span tree described
/// above. Follows-from edges are emitted only where the clocks order the
/// endpoints (always, for a consistent stamping — that is the property).
CausalTrace build_causal_trace(const Execution& exec, const Timestamps& stamps,
                               const CausalTraceOptions& options = {});

/// Adds one span per interval, covering its component events' span times.
void append_interval_spans(CausalTrace& trace, const Execution& exec,
                           std::span<const NonatomicEvent> intervals,
                           const CausalTraceOptions& options = {});

/// Adds one span tree per verdict waterfall (monitor wall-clock domain;
/// annotated clock_domain=wall so consumers don't mix the timelines).
void append_monitor_spans(CausalTrace& trace,
                          std::span<const Waterfall> waterfalls);

/// Adds marker spans for the interesting flight records: resync request /
/// serve, compaction, WAL activity, quarantine, crash, recovery.
void append_flight_spans(CausalTrace& trace,
                         const std::vector<FlightRecord>& records);

/// Property check: over the event spans, reachability through parent +
/// follows-from edges must coincide exactly with the strict clock order
/// (u ≺ v ⟺ v reachable from u). Returns false and fills `why` (when
/// non-null) on the first disagreement.
bool verify_causal_consistency(const CausalTrace& trace, const Execution& exec,
                               const Timestamps& stamps,
                               std::string* why = nullptr);

/// Spans of a given kind (e.g. counting "resync" spans in CI).
std::size_t count_spans_of_kind(const CausalTrace& trace,
                                std::string_view kind);

/// Chrome trace-event JSON: "X" complete events per span (pid = lane,
/// tid = span depth), follows-from as flow ("s"/"f") arrows.
void write_causal_chrome_trace(std::ostream& os, const CausalTrace& trace);

/// OTLP-style JSON (resourceSpans → scopeSpans → spans), hex-encoded ids,
/// links for the follows-from edges, times in ns.
void write_causal_otlp(std::ostream& os, const CausalTrace& trace);

}  // namespace syncon::obs
