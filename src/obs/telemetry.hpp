// Global telemetry switch (DESIGN.md §3.8). Instrumentation sites across
// the library guard every metric/span recording on obs::enabled(), which is
// a single relaxed atomic load — with telemetry off (the default) the hot
// paths pay one predictable branch and nothing else: no clock reads, no
// registry lookups, no allocations.
#pragma once

#include <atomic>

namespace syncon::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True iff telemetry recording is on. Off by default.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips telemetry recording globally. Thread-safe; spans already open keep
/// the state they started with.
void set_enabled(bool on);

}  // namespace syncon::obs
