// Exporters for the telemetry subsystem (DESIGN.md §3.8):
//  - Prometheus text exposition (scrape endpoint / file drop),
//  - JSON snapshots in the BENCH_*.json trajectory format
//    (scripts/ci_bench_smoke.sh assembles per-binary snapshots into
//    BENCH_smoke.json),
//  - Chrome trace-event JSON for the span recorder (loadable in Perfetto
//    or chrome://tracing),
//  - a plain-text per-phase span summary table for bench output.
// Both metric exporters render the same MetricsSnapshot, so their values
// can never drift apart.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace syncon::obs {

/// Maps a metric name onto the Prometheus charset: [a-zA-Z0-9_:], with any
/// '{...}' label suffix kept verbatim ("/" and "." become "_"). Edge cases
/// normalize instead of producing invalid exposition: an empty or label-only
/// name gets a "_" base, a digit-leading base is prefixed with "_", an
/// unterminated label suffix is closed, and a bare "{}" is dropped.
std::string sanitize_metric_name(std::string_view name);

/// JSON string escaping used by every obs exporter. Escapes quotes,
/// backslashes, all control bytes, and every non-ASCII byte (as \u00XX of
/// the raw byte value), so the output is always valid ASCII JSON no matter
/// what bytes a run label or label value carries.
std::string json_escape(std::string_view s);

/// Prometheus text exposition format, one # TYPE line per metric family.
/// Histograms render as cumulative <name>_bucket{le=...} + _sum + _count.
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

/// JSON snapshot ("syncon-telemetry-v1"): counters/gauges by name, and for
/// each histogram count/sum/min/max/mean/p50/p95/p99 plus the raw buckets.
/// `run` labels the producing binary or experiment.
void write_json(std::ostream& os, const MetricsSnapshot& snapshot,
                std::string_view run = "");

/// Chrome trace-event JSON ("X" complete events) of the retained spans.
void write_chrome_trace(std::ostream& os, const TraceRecorder& recorder);

/// Per-phase span summary as an aligned text table (src/support/table).
void write_span_summary(std::ostream& os, const TraceRecorder& recorder);

std::string prometheus_to_string(const MetricsSnapshot& snapshot);
std::string json_to_string(const MetricsSnapshot& snapshot,
                           std::string_view run = "");

}  // namespace syncon::obs
