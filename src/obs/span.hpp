// Span tracing (DESIGN.md §3.8): SYNCON_SPAN("phase/name") opens an RAII
// span whose completion is pushed into a fixed-capacity ring buffer. The
// recorder is exported as Chrome trace-event JSON (obs/export.hpp), which
// Perfetto and chrome://tracing load directly.
//
// Cost model: with telemetry disabled (the default) a SpanGuard is two
// relaxed loads and a branch — no clock read, no allocation, no lock. With
// it enabled, each completed span takes two steady_clock reads and one
// short mutex-guarded ring-buffer push; the ring never grows after
// set_capacity, so long runs stay bounded (oldest spans are overwritten).
//
// Span names are path-like, coarse phase labels (the taxonomy lives in
// DESIGN.md §3.8): "model/stamp", "relation/register", "relation/evaluate",
// "batch/sweep", "online/deliver", "online/resync_serve", "monitor/ingest",
// "des/run". Names must be string literals (the recorder stores the
// pointer, not a copy).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace syncon::obs {

/// One completed span. `name` must point at a string literal.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t thread = 0;
};

/// Microseconds since the process's telemetry epoch (steady clock).
std::uint64_t now_us();

/// Small dense id of the calling thread (0 for the first thread seen).
std::uint32_t current_thread_slot();

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Process-wide recorder used by SYNCON_SPAN.
  static TraceRecorder& global();

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// Resizes the ring; drops everything recorded so far.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  void record(const char* name, std::uint64_t start_us,
              std::uint64_t duration_us);

  /// Retained spans, oldest first (at most capacity(); earlier spans of a
  /// long run are overwritten).
  std::vector<SpanEvent> events() const;
  /// Spans recorded since the last clear, including overwritten ones.
  std::uint64_t recorded_total() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<SpanEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// Per-name aggregate over a recorder's retained spans.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;
  double mean_us() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_us) /
                            static_cast<double>(count);
  }
};

/// Aggregates the retained spans by name, name-sorted.
std::vector<SpanStats> aggregate_spans(const TraceRecorder& recorder);

/// RAII span: records into TraceRecorder::global() iff telemetry was
/// enabled at construction.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (enabled()) {
      name_ = name;
      start_ = now_us();
    }
  }
  ~SpanGuard() {
    if (name_ != nullptr) {
      TraceRecorder::global().record(name_, start_, now_us() - start_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace syncon::obs

#define SYNCON_SPAN_CONCAT2(a, b) a##b
#define SYNCON_SPAN_CONCAT(a, b) SYNCON_SPAN_CONCAT2(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define SYNCON_SPAN(name) \
  ::syncon::obs::SpanGuard SYNCON_SPAN_CONCAT(syncon_span_, __COUNTER__)(name)
