// MetricRegistry — named counters, gauges and fixed-bucket histograms for
// the whole stack (DESIGN.md §3.8).
//
// Determinism contract: every metric is recorded through thread-sharded
// slots and merged in shard order at snapshot time, mirroring how
// ThreadPool::parallel_for partitions work. Counter and bucket totals are
// integer sums (commutative, so exact at any thread count); histogram sums
// are doubles merged in shard order, and every instrumented sample in this
// codebase is integer-valued (comparison counts, µs durations), so the
// merged sums are exact too. A parallel sweep therefore reports bit-identical
// metric totals to the serial sweep (tests/obs_concurrency_test.cpp).
//
// Recording is lock-free (relaxed atomics on pre-registered slots);
// registration takes a mutex and should happen outside hot loops — cache
// the returned reference (it is stable for the registry's lifetime, even
// across reset()).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace syncon::obs {

/// Number of recording slots per metric. Shard indices from
/// ThreadPool::parallel_for are taken modulo this; serial code records into
/// slot 0.
inline constexpr std::size_t kMetricShards = 16;

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1, std::size_t shard = 0) {
    slots_[shard % kMetricShards].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  /// Merged total, slot 0 first (integer sum — order-independent).
  std::uint64_t total() const;
  void reset();

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Slot, kMetricShards> slots_;
};

/// Last-written instantaneous value (queue depths, published state).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Raises the gauge to v if it is below (CAS max) — high-water marks like
  /// peak live-log size, safe against concurrent setters.
  void set_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed bucket layout of a histogram: ascending upper bounds (Prometheus
/// `le` semantics — a sample lands in the first bucket whose bound is >= it;
/// one implicit +Inf overflow bucket follows).
struct HistogramSpec {
  std::vector<double> bounds;

  /// lo, lo*factor, lo*factor², ... up to and including the first bound
  /// >= hi. The default layout for µs latencies and comparison counts.
  static HistogramSpec exponential(double lo, double hi, double factor = 2.0);
  /// lo, lo+step, ..., n bounds total.
  static HistogramSpec linear(double lo, double step, std::size_t n);

  friend bool operator==(const HistogramSpec&,
                         const HistogramSpec&) = default;
};

/// Merged, immutable view of a histogram (see Histogram::snapshot).
struct HistogramSnapshot {
  std::vector<double> bounds;
  /// Per-bucket sample counts; counts.size() == bounds.size() + 1 (the last
  /// entry is the +Inf overflow bucket).
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Quantile in [0, 1], estimated by linear interpolation inside the
  /// containing bucket (the SampleSet::quantile convention lifted onto
  /// buckets) and clamped to the observed [min, max]. Requires count > 0.
  double quantile(double q) const;
};

/// Latency / size distribution over a fixed bucket layout.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const HistogramSpec& spec() const { return spec_; }

  void record(double value, std::size_t shard = 0);

  /// Merges the shard slots in shard order (deterministic double sum).
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  struct Shard {
    explicit Shard(std::size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };

  HistogramSpec spec_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// A point-in-time, name-sorted copy of every registered metric.
struct MetricsSnapshot {
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t counter_value = 0;
    std::int64_t gauge_value = 0;
    std::optional<HistogramSnapshot> histogram;
  };
  std::vector<Entry> entries;  // sorted by name

  const Entry* find(std::string_view name) const;
  std::uint64_t counter_value(std::string_view name) const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Process-wide default registry (what the built-in instrumentation and
  /// the exporters use).
  static MetricRegistry& global();

  /// Finds or creates. The returned reference is stable for the registry's
  /// lifetime; reset() zeroes values but never invalidates it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Re-registration with a different bucket layout is a contract violation
  /// (two sites disagreeing about one metric is a bug, not a merge).
  Histogram& histogram(std::string_view name, const HistogramSpec& spec);

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric value; registrations (and references) survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace syncon::obs
