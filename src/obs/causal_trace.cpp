#include "obs/causal_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "nonatomic/interval.hpp"
#include "obs/export.hpp"
#include "support/contracts.hpp"

namespace syncon::obs {

namespace {

/// FNV-1a, the deterministic hash behind trace ids.
std::uint64_t fnv1a(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string event_name(EventId e) {
  return "p" + std::to_string(e.process) + ":" + std::to_string(e.index);
}

/// Synthetic timeline: one step per topological position (offline
/// executions carry no wall time; determinism is what matters here).
std::uint64_t synthetic_time(const Execution& exec, EventId e,
                             const CausalTraceOptions& options) {
  return (static_cast<std::uint64_t>(exec.topological_index(e)) + 1) *
         options.synthetic_step_us;
}

}  // namespace

const CausalSpan* CausalTrace::find(std::uint64_t id) const {
  for (const CausalSpan& s : spans) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::uint64_t process_span_id(ProcessId p) {
  return (static_cast<std::uint64_t>(p) + 1) << 33;
}

std::uint64_t event_span_id(EventId e) {
  return (static_cast<std::uint64_t>(e.process + 1) << 32) | e.index;
}

std::uint64_t message_span_id(EventId send) {
  return event_span_id(send) | (1ull << 63);
}

CausalTrace build_causal_trace(const Execution& exec, const Timestamps& stamps,
                               const CausalTraceOptions& options) {
  SYNCON_REQUIRE(options.synthetic_step_us >= 2,
                 "synthetic_step_us must leave room for event durations");
  CausalTrace trace;

  std::uint64_t h = fnv1a(1469598103934665603ull, exec.process_count());
  h = fnv1a(h, exec.total_real_count());
  h = fnv1a(h, exec.messages().size());
  trace.trace_id = hex16(h) + hex16(fnv1a(h, 0x73796e636f6eull));

  const std::uint64_t step = options.synthetic_step_us;
  std::uint64_t horizon = step;

  // One root span per process lane.
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    CausalSpan span;
    span.id = process_span_id(p);
    span.name = "process " + std::to_string(p);
    span.kind = "process";
    span.process = p;
    span.start_us = 0;
    trace.spans.push_back(std::move(span));
  }

  // Receives of each message, for message span extents.
  std::unordered_map<EventId, EventId> receive_of;
  for (const Message& m : exec.messages()) receive_of[m.source] = m.target;

  if (options.event_spans) {
    for (const EventId& e : exec.topological_order()) {
      const std::uint64_t t = synthetic_time(exec, e, options);
      horizon = std::max(horizon, t + step);
      CausalSpan span;
      span.id = event_span_id(e);
      span.parent = process_span_id(e.process);
      span.name = event_name(e);
      span.kind = "event";
      span.process = e.process;
      span.start_us = t;
      span.end_us = t + step / 2;
      span.attributes.emplace_back("event", event_name(e));
      // Follows-from edges derived from clock comparisons — the builder
      // proposes the structural predecessors (program order + message
      // sources), but an edge is emitted only if the vector clocks order
      // the endpoints. verify_causal_consistency checks the result against
      // the full clock order.
      if (e.index > 1) {
        const EventId pred{e.process, e.index - 1};
        if (stamps.lt(pred, e)) {
          span.follows_from.push_back(event_span_id(pred));
        }
      }
      for (const EventId& src : exec.incoming(e)) {
        if (stamps.lt(src, e)) {
          span.follows_from.push_back(event_span_id(src));
        }
      }
      trace.spans.push_back(std::move(span));
    }
  }

  if (options.message_spans && options.event_spans) {
    for (const Message& m : exec.messages()) {
      CausalSpan span;
      span.id = message_span_id(m.source);
      span.parent = event_span_id(m.source);
      span.name = "msg " + event_name(m.source) + " -> " +
                  event_name(receive_of.at(m.source));
      span.kind = "message";
      span.process = m.source.process;
      span.start_us = synthetic_time(exec, m.source, options);
      span.end_us = synthetic_time(exec, receive_of.at(m.source), options);
      trace.spans.push_back(std::move(span));
    }
  }

  for (CausalSpan& span : trace.spans) {
    if (span.kind == "process") span.end_us = horizon;
  }
  return trace;
}

void append_interval_spans(CausalTrace& trace, const Execution& exec,
                           std::span<const NonatomicEvent> intervals,
                           const CausalTraceOptions& options) {
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const NonatomicEvent& iv = intervals[i];
    CausalSpan span;
    span.id = (0x2ull << 60) | (i + 1);
    span.name = iv.label().empty() ? "interval " + std::to_string(i)
                                   : iv.label();
    span.kind = "interval";
    span.process = iv.node_set().empty() ? CausalSpan::kNoLane
                                         : iv.node_set().front();
    std::uint64_t lo = ~0ull, hi = 0;
    for (const EventId& e : iv.events()) {
      const std::uint64_t t = synthetic_time(exec, e, options);
      lo = std::min(lo, t);
      hi = std::max(hi, t + options.synthetic_step_us / 2);
      // The interval "contains" its component events causally.
      span.follows_from.push_back(event_span_id(e));
    }
    span.start_us = lo;
    span.end_us = hi;
    span.attributes.emplace_back("events", std::to_string(iv.size()));
    trace.spans.push_back(std::move(span));
  }
}

void append_monitor_spans(CausalTrace& trace,
                          std::span<const Waterfall> waterfalls) {
  for (std::size_t i = 0; i < waterfalls.size(); ++i) {
    const Waterfall& w = waterfalls[i];
    const std::uint64_t id = (0x3ull << 60) | (i + 1);
    CausalSpan verdict;
    verdict.id = id;
    verdict.name = w.x + "|" + w.y;
    verdict.kind = "verdict";
    verdict.process = CausalSpan::kNoLane;
    verdict.start_us = w.start_us;
    verdict.end_us = w.end_us();
    verdict.attributes.emplace_back("holds", w.holds ? "true" : "false");
    verdict.attributes.emplace_back("confidence",
                                    w.definite ? "definite" : "pending-gap");
    verdict.attributes.emplace_back("fire", std::to_string(w.fire_index));
    verdict.attributes.emplace_back("clock_domain", "wall");
    trace.spans.push_back(std::move(verdict));
    for (std::size_t s = 0; s < w.stages.size(); ++s) {
      const StageSpan& stage = w.stages[s];
      CausalSpan span;
      span.id = (0x4ull << 60) | ((i + 1) << 8) | s;
      span.parent = id;
      span.name = stage.stage;
      span.kind = "stage";
      span.process = CausalSpan::kNoLane;
      span.start_us = stage.start_us;
      span.end_us = stage.end_us();
      span.attributes.emplace_back("clock_domain", "wall");
      trace.spans.push_back(std::move(span));
    }
  }
}

void append_flight_spans(CausalTrace& trace,
                         const std::vector<FlightRecord>& records) {
  for (const FlightRecord& r : records) {
    const char* kind = nullptr;
    std::string name;
    switch (r.kind) {
      case FlightKind::kResyncRequest:
        kind = "resync";
        name = "resync/request";
        break;
      case FlightKind::kResyncServe:
        kind = "resync";
        name = "resync/serve";
        break;
      case FlightKind::kCompact:
        kind = "compact";
        name = "compact";
        break;
      case FlightKind::kWalSync:
        kind = "wal";
        name = "wal/sync";
        break;
      case FlightKind::kWalRotate:
        kind = "wal";
        name = "wal/rotate";
        break;
      case FlightKind::kSnapshot:
        kind = "wal";
        name = "wal/snapshot";
        break;
      case FlightKind::kQuarantine:
        kind = "quarantine";
        name = "quarantine";
        break;
      case FlightKind::kCrash:
        kind = "crash";
        name = "crash";
        break;
      case FlightKind::kRecovery:
        kind = "recovery";
        name = "recovery";
        break;
      case FlightKind::kGapOpen:
        kind = "gap";
        name = "gap/open";
        break;
      case FlightKind::kGapClose:
        kind = "gap";
        name = "gap/close";
        break;
      default:
        break;  // deliveries & co. would drown the trace — skip
    }
    if (kind == nullptr) continue;
    CausalSpan span;
    span.id = (0x5ull << 60) | (r.seq + 1);
    span.name = std::move(name);
    span.kind = kind;
    span.process = r.process;
    span.start_us = r.t_us;
    span.end_us = r.t_us;
    span.attributes.emplace_back("a", std::to_string(r.a));
    span.attributes.emplace_back("b", std::to_string(r.b));
    span.attributes.emplace_back("clock_domain", "wall");
    trace.spans.push_back(std::move(span));
  }
}

bool verify_causal_consistency(const CausalTrace& trace, const Execution& exec,
                               const Timestamps& stamps, std::string* why) {
  const auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  // Dense index per real event, in topological order (so reachability can
  // be propagated in one forward pass).
  const std::vector<EventId>& order = exec.topological_order();
  std::unordered_map<std::uint64_t, std::size_t> dense;
  dense.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    dense.emplace(event_span_id(order[i]), i);
  }

  // Collect the follows-from adjacency over event spans.
  std::vector<std::vector<std::size_t>> preds(order.size());
  std::size_t event_spans = 0;
  for (const CausalSpan& span : trace.spans) {
    if (span.kind != "event") continue;
    const auto it = dense.find(span.id);
    if (it == dense.end()) {
      return fail("event span " + span.name +
                  " does not correspond to an event of the execution");
    }
    ++event_spans;
    for (const std::uint64_t f : span.follows_from) {
      const auto fit = dense.find(f);
      if (fit == dense.end()) {
        return fail("span " + span.name +
                    " has a follows-from link to a non-event span");
      }
      preds[it->second].push_back(fit->second);
    }
  }
  if (event_spans != order.size()) {
    return fail("trace has " + std::to_string(event_spans) +
                " event spans; execution has " +
                std::to_string(order.size()) + " events");
  }

  // Reachability through the links, propagated along the topological order.
  const std::size_t words = (order.size() + 63) / 64;
  std::vector<std::uint64_t> reach(order.size() * words, 0);
  const auto set_bit = [&](std::size_t row, std::size_t bit) {
    reach[row * words + bit / 64] |= 1ull << (bit % 64);
  };
  const auto get_bit = [&](std::size_t row, std::size_t bit) {
    return (reach[row * words + bit / 64] >> (bit % 64)) & 1u;
  };
  for (std::size_t v = 0; v < order.size(); ++v) {
    for (const std::size_t u : preds[v]) {
      if (u >= v) {
        return fail("follows-from link from " + event_name(order[v]) +
                    " runs against the topological order");
      }
      set_bit(v, u);
      for (std::size_t w = 0; w < words; ++w) {
        reach[v * words + w] |= reach[u * words + w];
      }
    }
  }

  // The property: u ≺ v (clocks) ⟺ u reachable from v's link closure.
  for (std::size_t v = 0; v < order.size(); ++v) {
    for (std::size_t u = 0; u < order.size(); ++u) {
      if (u == v) continue;
      const bool linked = get_bit(v, u);
      const bool before = stamps.lt(order[u], order[v]);
      if (linked != before) {
        return fail("events " + event_name(order[u]) + " and " +
                    event_name(order[v]) + ": clock order says " +
                    (before ? "ordered" : "unordered") +
                    ", span links say " + (linked ? "ordered" : "unordered"));
      }
    }
  }
  return true;
}

std::size_t count_spans_of_kind(const CausalTrace& trace,
                                std::string_view kind) {
  std::size_t n = 0;
  for (const CausalSpan& s : trace.spans) {
    if (s.kind == kind) ++n;
  }
  return n;
}

void write_causal_chrome_trace(std::ostream& os, const CausalTrace& trace) {
  const auto tid_of = [](const CausalSpan& s) -> int {
    if (s.kind == "process") return 0;
    if (s.kind == "event") return 1;
    if (s.kind == "message") return 2;
    if (s.kind == "interval") return 3;
    if (s.kind == "verdict") return 4;
    if (s.kind == "stage") return 5;
    return 6;
  };
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  std::uint64_t flow = 0;
  for (const CausalSpan& s : trace.spans) {
    const std::uint64_t pid =
        s.process == CausalSpan::kNoLane ? 9999 : s.process;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"" << json_escape(s.name) << "\", \"cat\": \""
       << json_escape(s.kind) << "\", \"ph\": \"X\", \"ts\": " << s.start_us
       << ", \"dur\": " << (s.end_us - s.start_us) << ", \"pid\": " << pid
       << ", \"tid\": " << tid_of(s) << "}";
    for (const std::uint64_t f : s.follows_from) {
      const CausalSpan* src = trace.find(f);
      if (src == nullptr) continue;
      const std::uint64_t src_pid =
          src->process == CausalSpan::kNoLane ? 9999 : src->process;
      ++flow;
      os << ",\n  {\"name\": \"follows\", \"cat\": \"follows\", \"ph\": "
            "\"s\", \"id\": "
         << flow << ", \"ts\": " << src->end_us << ", \"pid\": " << src_pid
         << ", \"tid\": " << tid_of(*src) << "}";
      os << ",\n  {\"name\": \"follows\", \"cat\": \"follows\", \"ph\": "
            "\"f\", \"bp\": \"e\", \"id\": "
         << flow << ", \"ts\": " << s.start_us << ", \"pid\": " << pid
         << ", \"tid\": " << tid_of(s) << "}";
    }
  }
  os << (first ? "" : "\n") << "]}\n";
}

void write_causal_otlp(std::ostream& os, const CausalTrace& trace) {
  os << "{\n  \"resourceSpans\": [{\n"
        "    \"resource\": {\"attributes\": [{\"key\": \"service.name\", "
        "\"value\": {\"stringValue\": \"syncon\"}}]},\n"
        "    \"scopeSpans\": [{\n"
        "      \"scope\": {\"name\": \"syncon.causal\"},\n"
        "      \"spans\": [";
  bool first = true;
  for (const CausalSpan& s : trace.spans) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "        {\"traceId\": \"" << trace.trace_id << "\", \"spanId\": \""
       << hex16(s.id) << "\", \"parentSpanId\": \""
       << (s.parent == 0 ? std::string() : hex16(s.parent))
       << "\", \"name\": \"" << json_escape(s.name)
       << "\", \"kind\": 1, \"startTimeUnixNano\": \"" << s.start_us * 1000
       << "\", \"endTimeUnixNano\": \"" << s.end_us * 1000 << "\"";
    os << ", \"attributes\": [{\"key\": \"syncon.kind\", \"value\": "
          "{\"stringValue\": \""
       << json_escape(s.kind) << "\"}}";
    for (const auto& [key, value] : s.attributes) {
      os << ", {\"key\": \"syncon." << json_escape(key)
         << "\", \"value\": {\"stringValue\": \"" << json_escape(value)
         << "\"}}";
    }
    os << "]";
    if (!s.follows_from.empty()) {
      os << ", \"links\": [";
      bool first_link = true;
      for (const std::uint64_t f : s.follows_from) {
        os << (first_link ? "" : ", ");
        first_link = false;
        os << "{\"traceId\": \"" << trace.trace_id << "\", \"spanId\": \""
           << hex16(f) << "\"}";
      }
      os << "]";
    }
    os << "}";
  }
  os << (first ? "" : "\n      ") << "]\n    }]\n  }]\n}\n";
}

}  // namespace syncon::obs
