// A deliberately tiny scrape endpoint (DESIGN.md §3.13): one blocking,
// single-threaded HTTP/1.0 responder bound to 127.0.0.1, serving the
// telemetry registry and the flight recorder of *this* process. It exists
// so a long soak (bench_longrun, syncon_metricsd) can be watched live with
// `curl` or a local Prometheus without pulling in a server dependency.
//
// Routes:
//   GET /metrics         Prometheus text exposition of the global registry
//   GET /telemetry.json  syncon-telemetry-v1 JSON snapshot
//   GET /flight          flight-recorder dump, text table
//   GET /flight.json     flight-recorder dump, syncon-flight-v1 JSON
//   GET /healthz         "ok"
//
// Concurrency model: none, on purpose. The owner calls serve_pending()
// from its main loop (e.g. once per soak cycle); each call drains every
// queued connection, handling one request per connection, then returns.
// The kernel listen backlog buffers scrapers between calls.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace syncon::obs {

class ScrapeServer {
 public:
  struct Options {
    std::uint16_t port = 0;  // 0 → kernel-assigned ephemeral port
    std::string run_label = "syncon";
    int listen_backlog = 16;
    /// Per-connection budget for reading the request head. A client that
    /// connects but never sends must not stall the owner's loop forever —
    /// the connection is dropped once the budget elapses.
    int request_timeout_ms = 5000;
  };

  ScrapeServer() : ScrapeServer(Options{}) {}
  explicit ScrapeServer(Options options);
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// False when binding the socket failed (port taken, no loopback, …);
  /// the server is then inert and serve_* calls return immediately.
  bool ok() const { return fd_ >= 0; }

  /// The bound port (resolves the ephemeral choice when options.port == 0).
  std::uint16_t port() const { return port_; }

  /// Waits up to timeout_ms (-1 = forever, 0 = poll) for one connection
  /// and serves it. Returns true iff a request was handled.
  bool serve_once(int timeout_ms = -1);

  /// Serves every connection already queued on the listen socket without
  /// blocking; returns how many requests were handled.
  std::size_t serve_pending();

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  void handle_connection(int client);

  Options options_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t requests_served_ = 0;
};

}  // namespace syncon::obs
