#include "obs/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string_view>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace syncon::obs {

namespace {

struct Response {
  const char* status = "200 OK";
  const char* content_type = "text/plain; charset=utf-8";
  std::string body;
};

Response route(std::string_view path, const std::string& run_label) {
  if (path == "/metrics") {
    return {"200 OK", "text/plain; version=0.0.4; charset=utf-8",
            prometheus_to_string(MetricRegistry::global().snapshot())};
  }
  if (path == "/telemetry.json") {
    return {"200 OK", "application/json",
            json_to_string(MetricRegistry::global().snapshot(), run_label)};
  }
  if (path == "/flight") {
    std::ostringstream oss;
    write_flight_text(oss, FlightRecorder::global().dump());
    return {"200 OK", "text/plain; charset=utf-8", oss.str()};
  }
  if (path == "/flight.json") {
    std::ostringstream oss;
    write_flight_json(oss, FlightRecorder::global().dump());
    return {"200 OK", "application/json", oss.str()};
  }
  if (path == "/healthz") {
    return {"200 OK", "text/plain; charset=utf-8", "ok\n"};
  }
  return {"404 Not Found", "text/plain; charset=utf-8",
          "unknown path; try /metrics /telemetry.json /flight /flight.json "
          "/healthz\n"};
}

void write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a scraper closing mid-response must surface as EPIPE,
    // not a process-killing SIGPIPE — this server lives inside long-running
    // daemons that must outlive any one client.
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;  // a signal is not a disconnect
      return;                        // peer went away; nothing to salvage
    }
    if (n == 0) return;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

}  // namespace

ScrapeServer::ScrapeServer(Options options) : options_(std::move(options)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(options_.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, options_.listen_backlog) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
}

ScrapeServer::~ScrapeServer() {
  if (fd_ >= 0) ::close(fd_);
}

bool ScrapeServer::serve_once(int timeout_ms) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return false;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return false;
  handle_connection(client);
  ::close(client);
  ++requests_served_;
  return true;
}

std::size_t ScrapeServer::serve_pending() {
  std::size_t served = 0;
  while (serve_once(0)) ++served;
  return served;
}

void ScrapeServer::handle_connection(int client) {
  // Read until the end of the request head (or a sanity cap); only the
  // request line matters — no header the routes care about. Every wait is
  // bounded by request_timeout_ms so a silent client cannot wedge the
  // owner's serve loop, and EINTR (from e.g. a profiler's timer signal)
  // restarts the wait instead of truncating the request.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.request_timeout_ms);
  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return;  // silent client: drop the connection
    pollfd pfd{client, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) return;  // timed out waiting for bytes
    const ssize_t n = ::read(client, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  std::string_view line(request);
  line = line.substr(0, line.find("\r\n"));

  Response response;
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.substr(0, sp1) != "GET") {
    response = {"400 Bad Request", "text/plain; charset=utf-8",
                "only GET is served here\n"};
  } else {
    std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    path = path.substr(0, path.find('?'));  // queries are ignored
    response = route(path, options_.run_label);
  }

  std::ostringstream head;
  head << "HTTP/1.0 " << response.status << "\r\n"
       << "Content-Type: " << response.content_type << "\r\n"
       << "Content-Length: " << response.body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  write_all(client, head.str());
  write_all(client, response.body);
}

}  // namespace syncon::obs
