#include "obs/latency.hpp"

#include <array>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "support/table.hpp"

namespace syncon::obs {

namespace {

constexpr std::array<const char*, 5> kDetectStages = {
    "observe", "track", "gap_wait", "evaluate", "fire"};

}  // namespace

bool Waterfall::monotone() const {
  std::uint64_t cursor = start_us;
  for (const StageSpan& s : stages) {
    if (s.start_us != cursor) return false;
    cursor = s.end_us();  // duration_us is unsigned: never runs backwards
  }
  return true;
}

std::span<const char* const> detect_stages() { return kDetectStages; }

void record_stage_latency(std::string_view stage, std::uint64_t us) {
  if (!enabled()) return;
  Histogram& h = MetricRegistry::global().histogram(
      "syncon_detect_latency_" + std::string(stage) + "_us",
      HistogramSpec::exponential(1.0, 1048576.0));
  h.record(static_cast<double>(us));
}

void write_waterfalls(std::ostream& os, std::span<const Waterfall> falls) {
  TextTable table({"pair", "verdict", "fire", "stage", "start µs", "µs"});
  for (const Waterfall& w : falls) {
    const std::string pair = w.x + "|" + w.y;
    const std::string verdict = std::string(w.holds ? "holds" : "fails") +
                                (w.definite ? " (definite)" : " (pending)");
    for (std::size_t i = 0; i < w.stages.size(); ++i) {
      const StageSpan& s = w.stages[i];
      table.new_row()
          .add_cell(i == 0 ? pair : std::string())
          .add_cell(i == 0 ? verdict : std::string())
          .add_cell(i == 0 ? "#" + std::to_string(w.fire_index)
                           : std::string())
          .add_cell(s.stage)
          .add_cell(with_thousands(s.start_us))
          .add_cell(with_thousands(s.duration_us));
    }
    table.new_row()
        .add_cell(std::string())
        .add_cell(std::string())
        .add_cell(std::string())
        .add_cell(std::string("= total"))
        .add_cell(with_thousands(w.start_us))
        .add_cell(with_thousands(w.total_us()));
  }
  table.print(os);
}

void write_waterfalls_json(std::ostream& os, std::span<const Waterfall> falls) {
  os << "{\n  \"schema\": \"syncon-waterfalls-v1\",\n  \"waterfalls\": [";
  bool first = true;
  for (const Waterfall& w : falls) {
    os << (first ? "\n" : ",\n");
    os << "    {\"x\": \"" << w.x << "\", \"y\": \"" << w.y
       << "\", \"holds\": " << (w.holds ? "true" : "false")
       << ", \"definite\": " << (w.definite ? "true" : "false")
       << ", \"fire\": " << w.fire_index << ", \"start_us\": " << w.start_us
       << ", \"total_us\": " << w.total_us()
       << ", \"monotone\": " << (w.monotone() ? "true" : "false")
       << ", \"stages\": [";
    bool first_stage = true;
    for (const StageSpan& s : w.stages) {
      os << (first_stage ? "" : ", ");
      os << "{\"stage\": \"" << s.stage << "\", \"start_us\": " << s.start_us
         << ", \"duration_us\": " << s.duration_us << "}";
      first_stage = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

}  // namespace syncon::obs
