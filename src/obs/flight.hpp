// Always-on flight recorder (DESIGN.md §3.13): a fixed-size lock-free ring
// of compact structured records written from every subsystem — deliveries,
// duplicates, gap transitions, resync traffic, compactions, WAL activity,
// quarantines, crashes, recoveries. The ring is the crash black box: when
// something goes wrong (a quarantined frame, a recovery, a SYNCON_REQUIRE
// failure) the last `capacity` records show what the system was doing just
// before, and can be dumped automatically to a configured file.
//
// Cost model. Disabled (the default), obs::flight() is one relaxed atomic
// load and a branch — no clock read, no allocation, no lock (the same
// contract as SYNCON_SPAN). Enabled, a record is one fetch_add on the
// global sequence plus five relaxed/release atomic stores into a
// pre-allocated slot: concurrent writers never block each other and never
// allocate. Readers (dump()) validate each slot with a seqlock stamp, so a
// record overwritten mid-read is skipped, never torn — which also makes
// writer/reader interleavings ThreadSanitizer-clean.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "model/types.hpp"

namespace syncon::obs {

/// What happened. Kept in sync with to_string() and DESIGN.md §3.13.
enum class FlightKind : std::uint8_t {
  kDelivery = 0,      // receiver consumed a fresh message (a = source id)
  kDuplicate,         // duplicate delivery suppressed (a = source id)
  kGapOpen,           // monitor gap opened (a = missing count)
  kGapClose,          // monitor gap closed (a = reports, b = wall µs open)
  kResyncRequest,     // resync request issued (a = events, b = attempt #)
  kResyncServe,       // authoritative log served (a = asked, b = answered)
  kCompact,           // log compacted (a = reclaimed, b = live after)
  kWalSync,           // WAL fsync (a = records, b = bytes appended)
  kWalRotate,         // WAL segment rotated (a = new segment seq)
  kSnapshot,          // durable snapshot written (a = checkpoint seq)
  kQuarantine,        // malformed input rejected (a = offending source id)
  kCrash,             // process marked crashed
  kRecovery,          // crash recovery completed (a = replayed, b = µs)
  kVerdict,           // watch fired (a = holds | definite<<1, b = latency µs)
  kCheckpoint,        // clock snapshot / retention checkpoint adopted
  kContractFailure,   // SYNCON_REQUIRE / SYNCON_ASSERT tripped
};

const char* to_string(FlightKind kind);

/// One decoded ring record. `a` / `b` are kind-specific payload words (see
/// FlightKind); event ids travel packed via pack_event/unpack_event.
struct FlightRecord {
  std::uint64_t seq = 0;   // global write sequence, dense, oldest-first
  std::uint64_t t_us = 0;  // obs::now_us() at the write
  FlightKind kind = FlightKind::kDelivery;
  std::uint32_t process = 0;  // owning process / receiver (kNoProcess: none)
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  static constexpr std::uint32_t kNoProcess = 0xffffffffu;
};

constexpr std::uint64_t pack_event(EventId e) {
  return (static_cast<std::uint64_t>(e.process) << 32) | e.index;
}
constexpr EventId unpack_event(std::uint64_t packed) {
  return EventId{static_cast<ProcessId>(packed >> 32),
                 static_cast<EventIndex>(packed & 0xffffffffu)};
}

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Capacity is rounded up to a power of two.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide recorder used by obs::flight().
  static FlightRecorder& global();

  /// Resizes the ring; drops everything recorded so far.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return mask_ + 1; }

  void record(FlightKind kind, std::uint32_t process, std::uint64_t a = 0,
              std::uint64_t b = 0);

  /// Consistent snapshot of the retained records, oldest first (at most
  /// capacity(); slots a concurrent writer is mid-way through are skipped).
  std::vector<FlightRecord> dump() const;

  /// Records written since construction / the last clear, including ones
  /// the ring has since overwritten.
  std::uint64_t recorded_total() const {
    return next_.load(std::memory_order_acquire);
  }

  void clear();

 private:
  // Seqlock slot: `stamp` is 0 (never written), odd (write in progress) or
  // 2*seq + 2 (payload of write `seq` committed). Payload words are relaxed
  // atomics so concurrent access is race-free by construction.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> t_us{0};
    std::atomic<std::uint64_t> kind_process{0};  // kind << 32 | process
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };

  std::unique_ptr<Slot[]> ring_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
};

namespace detail {
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

/// True iff flight recording is on. Off by default; independent of
/// obs::enabled() so the black box can stay armed with metrics off (and
/// vice versa for zero-overhead benchmarking).
inline bool flight_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

void set_flight_enabled(bool on);

/// The one-line recording call every subsystem uses; a disabled recorder
/// costs one relaxed load and a branch.
inline void flight(FlightKind kind, std::uint32_t process, std::uint64_t a = 0,
                   std::uint64_t b = 0) {
  if (flight_enabled()) FlightRecorder::global().record(kind, process, a, b);
}

// --- automatic dumps ---------------------------------------------------------

/// File the automatic dumps append to. Empty (the default) disables them.
/// Dumps are appended with a reason header so consecutive incidents stack.
void set_flight_dump_path(std::string path);
std::string flight_dump_path();

/// Appends a text dump of the global ring to the configured dump path now
/// (the on-quarantine / on-recovery / on-contract-failure hook; also usable
/// on demand). Returns false when disabled, not recording, or the ring is
/// empty. Never throws — the black box must not turn an incident into a
/// second failure.
bool flight_auto_dump(const char* reason) noexcept;

// --- pretty-printers ---------------------------------------------------------

void write_flight_text(std::ostream& os, const std::vector<FlightRecord>& records);
void write_flight_json(std::ostream& os, const std::vector<FlightRecord>& records);

}  // namespace syncon::obs
