#include "obs/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <utility>

#include "support/table.hpp"

namespace syncon::obs {

namespace {

/// Shortest round-tripping decimal rendering of a double ("%.17g" trimmed
/// by retrying shorter precisions first).
std::string format_double(double v) {
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Splits "base{labels}" into its two parts ("" labels when absent).
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace);
  labels.remove_prefix(1);  // '{'
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {name.substr(0, brace), labels};
}

const char* type_name(MetricsSnapshot::Kind kind) {
  switch (kind) {
    case MetricsSnapshot::Kind::Counter: return "counter";
    case MetricsSnapshot::Kind::Gauge: return "gauge";
    case MetricsSnapshot::Kind::Histogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        // Control bytes are invalid in JSON strings; bytes >= 0x7f are
        // escaped too (as the raw byte value) so a run label carrying
        // non-UTF-8 garbage still yields valid ASCII JSON.
        const unsigned byte = static_cast<unsigned char>(c);
        if (byte < 0x20 || byte >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

std::string sanitize_metric_name(std::string_view name) {
  const auto [base, labels] = split_labels(name);
  std::string out;
  out.reserve(name.size());
  for (const char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  return out;
}

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  std::string last_typed_base;
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    const std::string sanitized = sanitize_metric_name(e.name);
    const auto [base_sv, labels_sv] = split_labels(sanitized);
    const std::string base(base_sv);
    const std::string labels(labels_sv);
    if (base != last_typed_base) {
      os << "# TYPE " << base << " " << type_name(e.kind) << "\n";
      last_typed_base = base;
    }
    switch (e.kind) {
      case MetricsSnapshot::Kind::Counter:
        os << sanitized << " " << e.counter_value << "\n";
        break;
      case MetricsSnapshot::Kind::Gauge:
        os << sanitized << " " << e.gauge_value << "\n";
        break;
      case MetricsSnapshot::Kind::Histogram: {
        const HistogramSnapshot& h = *e.histogram;
        const std::string label_prefix =
            labels.empty() ? std::string() : labels + ",";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
          cumulative += h.counts[b];
          const std::string le =
              b == h.bounds.size() ? "+Inf" : format_double(h.bounds[b]);
          os << base << "_bucket{" << label_prefix << "le=\"" << le << "\"} "
             << cumulative << "\n";
        }
        os << base << "_sum" << (labels.empty() ? "" : "{" + labels + "}")
           << " " << format_double(h.sum) << "\n";
        os << base << "_count" << (labels.empty() ? "" : "{" + labels + "}")
           << " " << h.count << "\n";
        break;
      }
    }
  }
}

void write_json(std::ostream& os, const MetricsSnapshot& snapshot,
                std::string_view run) {
  os << "{\n  \"schema\": \"syncon-telemetry-v1\",\n";
  os << "  \"run\": \"" << json_escape(run) << "\",\n";

  const auto write_section = [&](const char* section,
                                 MetricsSnapshot::Kind kind) {
    os << "  \"" << section << "\": {";
    bool first = true;
    for (const MetricsSnapshot::Entry& e : snapshot.entries) {
      if (e.kind != kind) continue;
      os << (first ? "\n" : ",\n") << "    \"" << json_escape(e.name)
         << "\": ";
      if (kind == MetricsSnapshot::Kind::Counter) {
        os << e.counter_value;
      } else {
        os << e.gauge_value;
      }
      first = false;
    }
    os << (first ? "" : "\n  ") << "}";
  };

  write_section("counters", MetricsSnapshot::Kind::Counter);
  os << ",\n";
  write_section("gauges", MetricsSnapshot::Kind::Gauge);
  os << ",\n  \"histograms\": {";
  bool first = true;
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    if (e.kind != MetricsSnapshot::Kind::Histogram) continue;
    const HistogramSnapshot& h = *e.histogram;
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(e.name)
       << "\": {";
    os << "\"count\": " << h.count << ", \"sum\": " << format_double(h.sum)
       << ", \"min\": " << format_double(h.min)
       << ", \"max\": " << format_double(h.max)
       << ", \"mean\": " << format_double(h.mean());
    const std::pair<const char*, double> quantiles[] = {
        {"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}};
    for (const auto& [label, q] : quantiles) {
      os << ", \"" << label
         << "\": " << format_double(h.count == 0 ? 0.0 : h.quantile(q));
    }
    os << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) os << ", ";
      os << "{\"le\": "
         << (b == h.bounds.size() ? std::string("\"+Inf\"")
                                  : format_double(h.bounds[b]))
         << ", \"count\": " << h.counts[b] << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void write_chrome_trace(std::ostream& os, const TraceRecorder& recorder) {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const SpanEvent& e : recorder.events()) {
    os << (first ? "\n" : ",\n");
    os << "  {\"name\": \"" << json_escape(e.name)
       << "\", \"cat\": \"syncon\", \"ph\": \"X\", \"ts\": " << e.start_us
       << ", \"dur\": " << e.duration_us << ", \"pid\": 0, \"tid\": "
       << e.thread << "}";
    first = false;
  }
  os << (first ? "" : "\n") << "]}\n";
}

void write_span_summary(std::ostream& os, const TraceRecorder& recorder) {
  TextTable table({"span", "count", "total µs", "mean µs", "max µs"});
  for (const SpanStats& s : aggregate_spans(recorder)) {
    table.new_row()
        .add_cell(s.name)
        .add_cell(s.count)
        .add_cell(with_thousands(s.total_us))
        .add_cell(s.mean_us(), 1)
        .add_cell(with_thousands(s.max_us));
  }
  table.print(os);
}

std::string prometheus_to_string(const MetricsSnapshot& snapshot) {
  std::ostringstream oss;
  write_prometheus(oss, snapshot);
  return oss.str();
}

std::string json_to_string(const MetricsSnapshot& snapshot,
                           std::string_view run) {
  std::ostringstream oss;
  write_json(oss, snapshot, run);
  return oss.str();
}

}  // namespace syncon::obs
