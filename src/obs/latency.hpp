// Detection-latency attribution (DESIGN.md §3.13): every watch firing is
// decomposed into a contiguous waterfall of named pipeline stages —
//
//   observe    first report of the pair seen → last report folded
//   track      last report folded → both actions completed
//   gap_wait   completion → evaluation dispatch (dwell on open gaps /
//              resync waits / re-fire rearm; ~0 on the clean path)
//   evaluate   evaluate_online() runtime
//   fire       callback dispatch
//
// measured on the monitor's wall clock (obs::now_us()). Stage boundaries
// are clamped monotone, so a waterfall's stages always sum exactly to its
// end-to-end detection latency. Two extra stages live outside the per-
// verdict waterfall because they happen in other components: "delivered"
// (send → receive in *application* time, from OnlineSystem) and
// "wal_replay" (crash-recovery replay, from the durability layer); both
// publish into the same syncon_detect_latency_{stage}_us histogram family,
// as does "resync_wait" (wall-µs dwell of each closed gap episode).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace syncon::obs {

/// One stage of a waterfall. Stages are contiguous: stage i+1 starts where
/// stage i ends.
struct StageSpan {
  std::string stage;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t end_us() const { return start_us + duration_us; }
};

/// The per-verdict latency breakdown write_online_report renders.
struct Waterfall {
  std::string x, y;          // the watched pair
  bool holds = false;
  bool definite = false;     // confidence of this firing
  int fire_index = 1;        // 1 = first firing, 2 = re-fire after repair, …
  std::uint64_t start_us = 0;
  std::vector<StageSpan> stages;

  std::uint64_t end_us() const {
    return stages.empty() ? start_us : stages.back().end_us();
  }
  /// End-to-end detection latency; equals the sum of the stage durations.
  std::uint64_t total_us() const { return end_us() - start_us; }
  /// True iff stages are contiguous, in order, and anchored at start_us —
  /// the invariant tests and ci_obs_smoke assert on.
  bool monotone() const;
};

/// The in-waterfall stage taxonomy, pipeline order.
std::span<const char* const> detect_stages();

/// Records one stage duration into syncon_detect_latency_{stage}_us
/// (exponential µs buckets) when telemetry is enabled; no-op otherwise.
void record_stage_latency(std::string_view stage, std::uint64_t us);

/// Renders waterfalls as an aligned text table (one row per stage).
void write_waterfalls(std::ostream& os, std::span<const Waterfall> falls);

/// JSON array form ("syncon-waterfalls-v1") for tooling / CI assertions.
void write_waterfalls_json(std::ostream& os, std::span<const Waterfall> falls);

}  // namespace syncon::obs
