#include "obs/flight.hpp"

#include <fstream>
#include <mutex>
#include <ostream>

#include "obs/span.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace syncon::obs {

namespace detail {
std::atomic<bool> g_flight_enabled{false};
}  // namespace detail

void set_flight_enabled(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kDelivery: return "delivery";
    case FlightKind::kDuplicate: return "duplicate";
    case FlightKind::kGapOpen: return "gap-open";
    case FlightKind::kGapClose: return "gap-close";
    case FlightKind::kResyncRequest: return "resync-request";
    case FlightKind::kResyncServe: return "resync-serve";
    case FlightKind::kCompact: return "compact";
    case FlightKind::kWalSync: return "wal-sync";
    case FlightKind::kWalRotate: return "wal-rotate";
    case FlightKind::kSnapshot: return "snapshot";
    case FlightKind::kQuarantine: return "quarantine";
    case FlightKind::kCrash: return "crash";
    case FlightKind::kRecovery: return "recovery";
    case FlightKind::kVerdict: return "verdict";
    case FlightKind::kCheckpoint: return "checkpoint";
    case FlightKind::kContractFailure: return "contract-failure";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  SYNCON_REQUIRE(capacity >= 1, "flight ring needs at least one slot");
  const std::size_t cap = round_up_pow2(capacity);
  ring_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  SYNCON_REQUIRE(capacity >= 1, "flight ring needs at least one slot");
  const std::size_t cap = round_up_pow2(capacity);
  auto fresh = std::make_unique<Slot[]>(cap);
  ring_ = std::move(fresh);
  mask_ = cap - 1;
  next_.store(0, std::memory_order_release);
}

void FlightRecorder::clear() {
  const std::size_t cap = mask_ + 1;
  for (std::size_t i = 0; i < cap; ++i) {
    ring_[i].stamp.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_release);
}

void FlightRecorder::record(FlightKind kind, std::uint32_t process,
                            std::uint64_t a, std::uint64_t b) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[seq & mask_];
  // Seqlock write: mark in-progress (odd), fill payload, commit (even,
  // derived from seq so a reader can match stamp against the sequence it
  // expects). Two writers lapping each other on the same slot resolve to
  // a stamp mismatch on the reader side — the record is skipped, not torn.
  slot.stamp.store(2 * seq + 1, std::memory_order_relaxed);
  slot.t_us.store(now_us(), std::memory_order_relaxed);
  slot.kind_process.store(
      (static_cast<std::uint64_t>(kind) << 32) | process,
      std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.stamp.store(2 * seq + 2, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::dump() const {
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t start = total > cap ? total - cap : 0;
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(total - start));
  for (std::uint64_t seq = start; seq < total; ++seq) {
    const Slot& slot = ring_[seq & mask_];
    if (slot.stamp.load(std::memory_order_acquire) != 2 * seq + 2) {
      continue;  // write in progress or already lapped — skip, never tear
    }
    FlightRecord rec;
    rec.seq = seq;
    rec.t_us = slot.t_us.load(std::memory_order_relaxed);
    const std::uint64_t kp = slot.kind_process.load(std::memory_order_relaxed);
    rec.kind = static_cast<FlightKind>(kp >> 32);
    rec.process = static_cast<std::uint32_t>(kp & 0xffffffffu);
    rec.a = slot.a.load(std::memory_order_relaxed);
    rec.b = slot.b.load(std::memory_order_relaxed);
    // Re-check: if a writer lapped us mid-read the payload may mix two
    // records; the stamp will have moved on and we drop the slot.
    if (slot.stamp.load(std::memory_order_acquire) != 2 * seq + 2) continue;
    out.push_back(rec);
  }
  return out;
}

// --- automatic dumps ---------------------------------------------------------

namespace {

std::mutex& dump_mutex() {
  static std::mutex m;
  return m;
}

std::string& dump_path_storage() {
  static std::string path;
  return path;
}

}  // namespace

void set_flight_dump_path(std::string path) {
  const std::lock_guard<std::mutex> lock(dump_mutex());
  dump_path_storage() = std::move(path);
}

std::string flight_dump_path() {
  const std::lock_guard<std::mutex> lock(dump_mutex());
  return dump_path_storage();
}

bool flight_auto_dump(const char* reason) noexcept {
  try {
    if (!flight_enabled()) return false;
    const std::string path = flight_dump_path();
    if (path.empty()) return false;
    const std::vector<FlightRecord> records = FlightRecorder::global().dump();
    if (records.empty()) return false;
    const std::lock_guard<std::mutex> lock(dump_mutex());
    std::ofstream out(path, std::ios::app);
    if (!out) return false;
    out << "=== flight dump (" << (reason == nullptr ? "on-demand" : reason)
        << ") at t=" << now_us() << "µs ===\n";
    write_flight_text(out, records);
    return out.good();
  } catch (...) {
    return false;  // the black box must never add a second failure
  }
}

// --- pretty-printers ---------------------------------------------------------

namespace {

/// Human rendering of the kind-specific payload words.
std::string describe_payload(const FlightRecord& r) {
  const auto event = [](std::uint64_t packed) {
    const EventId e = unpack_event(packed);
    return "p" + std::to_string(e.process) + ":" + std::to_string(e.index);
  };
  switch (r.kind) {
    case FlightKind::kDelivery:
    case FlightKind::kDuplicate:
    case FlightKind::kQuarantine:
      return "source " + event(r.a);
    case FlightKind::kGapOpen:
      return std::to_string(r.a) + " missing";
    case FlightKind::kGapClose:
      return std::to_string(r.a) + " reports, " + std::to_string(r.b) +
             "µs open";
    case FlightKind::kResyncRequest:
      return std::to_string(r.a) + " events, attempt " + std::to_string(r.b);
    case FlightKind::kResyncServe:
      return std::to_string(r.a) + " asked, " + std::to_string(r.b) +
             " answered";
    case FlightKind::kCompact:
      return std::to_string(r.a) + " reclaimed, " + std::to_string(r.b) +
             " live";
    case FlightKind::kWalSync:
      return std::to_string(r.a) + " records, " + std::to_string(r.b) +
             " bytes";
    case FlightKind::kWalRotate:
      return "segment " + std::to_string(r.a);
    case FlightKind::kSnapshot:
      return "checkpoint seq " + std::to_string(r.a);
    case FlightKind::kRecovery:
      return std::to_string(r.a) + " replayed, " + std::to_string(r.b) + "µs";
    case FlightKind::kVerdict:
      return std::string((r.a & 1) != 0 ? "holds" : "fails") +
             ((r.a & 2) != 0 ? " definite" : " pending-gap") + ", " +
             std::to_string(r.b) + "µs";
    case FlightKind::kCrash:
    case FlightKind::kCheckpoint:
    case FlightKind::kContractFailure:
      break;
  }
  return {};
}

}  // namespace

void write_flight_text(std::ostream& os,
                       const std::vector<FlightRecord>& records) {
  TextTable table({"seq", "t µs", "kind", "proc", "detail"});
  for (const FlightRecord& r : records) {
    table.new_row()
        .add_cell(r.seq)
        .add_cell(with_thousands(r.t_us))
        .add_cell(std::string(to_string(r.kind)))
        .add_cell(r.process == FlightRecord::kNoProcess
                      ? std::string("-")
                      : "p" + std::to_string(r.process))
        .add_cell(describe_payload(r));
  }
  table.print(os);
}

void write_flight_json(std::ostream& os,
                       const std::vector<FlightRecord>& records) {
  os << "{\n  \"schema\": \"syncon-flight-v1\",\n  \"records\": [";
  bool first = true;
  for (const FlightRecord& r : records) {
    os << (first ? "\n" : ",\n");
    os << "    {\"seq\": " << r.seq << ", \"t_us\": " << r.t_us
       << ", \"kind\": \"" << to_string(r.kind) << "\", \"process\": ";
    if (r.process == FlightRecord::kNoProcess) {
      os << "null";
    } else {
      os << r.process;
    }
    os << ", \"a\": " << r.a << ", \"b\": " << r.b << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

}  // namespace syncon::obs
