#include "explore/universe.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace syncon::explore {

std::size_t Universe::total_ops() const {
  std::size_t n = 0;
  for (const auto& script : ops) n += script.size();
  return n;
}

std::size_t Universe::total_steps() const {
  std::size_t n = messages.size();
  for (const auto& script : ops) {
    for (const UniverseOp& op : script) {
      if (op.recv_arity == 0) ++n;
    }
  }
  return n;
}

Universe universe_from_execution(const Execution& exec) {
  Universe u;
  u.ops.resize(exec.process_count());
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    u.ops[p].resize(exec.real_count(p));
    for (EventIndex i = 1; i <= exec.real_count(p); ++i) {
      u.ops[p][i - 1].recv_arity =
          static_cast<std::uint32_t>(exec.incoming({p, i}).size());
    }
  }
  u.messages.reserve(exec.messages().size());
  for (const Message& m : exec.messages()) {
    const std::uint32_t id = static_cast<std::uint32_t>(u.messages.size());
    u.messages.push_back({m.source.process,
                          static_cast<std::uint32_t>(m.source.index - 1),
                          m.target.process});
    u.ops[m.source.process][m.source.index - 1].sends.push_back(id);
  }
  return u;
}

bool dependent(const Universe& u, Step a, Step b) {
  const bool da = is_deliver(a), db = is_deliver(b);
  if (!da && !db) return process_of_exec(a) == process_of_exec(b);
  if (da && db) {
    const UniverseMessage& ma = u.messages[message_of(a)];
    const UniverseMessage& mb = u.messages[message_of(b)];
    // Same destination: they contend for the same receive slots. A deliver
    // into a message's source process can complete the receive op that
    // sources it (enabling dependence), so those pairs cannot commute
    // either.
    return ma.dst == mb.dst || mb.dst == ma.src || ma.dst == mb.src;
  }
  const Step e = da ? b : a;
  const UniverseMessage& m = u.messages[message_of(da ? a : b)];
  // An exec on the destination advances the cursor the delivery binds
  // against; the exec of the source op enables the delivery.
  return process_of_exec(e) == m.dst ||
         (process_of_exec(e) == m.src && op_of_exec(e) == m.src_op);
}

ScheduleState::ScheduleState(const Universe& u)
    : cursor(u.process_count(), 0),
      filled(u.process_count(), 0),
      delivered(u.messages.size(), 0),
      binding(u.messages.size(), kUnbound) {}

bool ScheduleState::enabled(const Universe& u, Step s) const {
  if (!is_deliver(s)) {
    const ProcessId p = process_of_exec(s);
    const std::uint32_t k = op_of_exec(s);
    return cursor[p] == k && k < u.ops[p].size() &&
           u.ops[p][k].recv_arity == 0;
  }
  const std::uint32_t id = message_of(s);
  if (delivered[id]) return false;
  const UniverseMessage& m = u.messages[id];
  if (m.src_op >= cursor[m.src]) return false;  // source event not built yet
  if (cursor[m.dst] >= u.ops[m.dst].size()) return false;
  const UniverseOp& op = u.ops[m.dst][cursor[m.dst]];
  return op.recv_arity > 0 && filled[m.dst] < op.recv_arity;
}

void ScheduleState::apply(const Universe& u, Step s) {
  SYNCON_ASSERT(enabled(u, s), "apply() of a disabled step");
  if (!is_deliver(s)) {
    ++cursor[process_of_exec(s)];
  } else {
    const std::uint32_t id = message_of(s);
    const UniverseMessage& m = u.messages[id];
    delivered[id] = 1;
    binding[id] = cursor[m.dst];
    if (++filled[m.dst] == u.ops[m.dst][cursor[m.dst]].recv_arity) {
      ++cursor[m.dst];
      filled[m.dst] = 0;
    }
  }
  ++steps_taken;
}

std::vector<Step> ScheduleState::enabled_steps(const Universe& u) const {
  std::vector<Step> out;
  // Emitted in canonical (integer) order: exec steps process-ascending
  // first, then delivers message-ascending.
  for (ProcessId p = 0; p < u.process_count(); ++p) {
    const Step s = exec_step(p, cursor[p]);
    if (enabled(u, s)) out.push_back(s);
  }
  for (std::uint32_t id = 0; id < u.messages.size(); ++id) {
    const Step s = deliver_step(id);
    if (enabled(u, s)) out.push_back(s);
  }
  return out;
}

TraceKey trace_key(const Universe& u, const Schedule& s) {
  // Per receive op (process major, program order): the sorted multiset of
  // bound source events, 0-terminated. Source entries are (src+1)<<32 |
  // src_op, so they never collide with the separator.
  std::vector<std::vector<std::uint64_t>> per_op_sources;
  std::vector<std::vector<std::size_t>> slot(u.process_count());
  std::size_t recv_ops = 0;
  for (ProcessId p = 0; p < u.process_count(); ++p) {
    slot[p].assign(u.ops[p].size(), SIZE_MAX);
    for (std::size_t j = 0; j < u.ops[p].size(); ++j) {
      if (u.ops[p][j].recv_arity > 0) slot[p][j] = recv_ops++;
    }
  }
  per_op_sources.resize(recv_ops);
  for (std::uint32_t id = 0; id < u.messages.size(); ++id) {
    const UniverseMessage& m = u.messages[id];
    SYNCON_ASSERT(s.binding[id] != ScheduleState::kUnbound,
                  "trace_key of an incomplete schedule");
    per_op_sources[slot[m.dst][s.binding[id]]].push_back(
        (static_cast<std::uint64_t>(m.src) + 1) << 32 | m.src_op);
  }
  TraceKey key;
  key.reserve(u.messages.size() + recv_ops);
  for (auto& sources : per_op_sources) {
    std::sort(sources.begin(), sources.end());
    key.insert(key.end(), sources.begin(), sources.end());
    key.push_back(0);
  }
  return key;
}

std::shared_ptr<const Execution> induced_execution(const Universe& u,
                                                   const Schedule& s) {
  ExecutionBuilder b(u.process_count());
  ScheduleState st(u);
  std::vector<std::vector<EventId>> pending(u.process_count());
  for (const Step step : s.word) {
    if (!is_deliver(step)) {
      b.local(process_of_exec(step));
      st.apply(u, step);
      continue;
    }
    const UniverseMessage& m = u.messages[message_of(step)];
    pending[m.dst].push_back(
        {m.src, static_cast<EventIndex>(m.src_op + 1)});
    const std::uint32_t before = st.cursor[m.dst];
    st.apply(u, step);
    if (st.cursor[m.dst] != before) {  // the delivery completed the gather
      std::sort(pending[m.dst].begin(), pending[m.dst].end());
      b.receive_from(m.dst, pending[m.dst]);
      pending[m.dst].clear();
    }
  }
  SYNCON_REQUIRE(st.complete(u), "induced_execution of a partial schedule");
  return std::make_shared<const Execution>(b.build());
}

}  // namespace syncon::explore
