#include "explore/explorer.hpp"

#include <atomic>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace syncon::explore {

namespace {

struct KeyHash {
  std::size_t operator()(const TraceKey& key) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint64_t word : key) {
      h ^= word;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

obs::Counter& visited_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "syncon_explore_schedules_visited_total");
  return c;
}

obs::Counter& pruned_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "syncon_explore_prefixes_pruned_total");
  return c;
}

obs::Counter& dedup_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "syncon_explore_traces_deduped_total");
  return c;
}

obs::Counter& dead_end_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "syncon_explore_dead_ends_total");
  return c;
}

obs::Histogram& check_latency_histogram() {
  static obs::Histogram& h = obs::MetricRegistry::global().histogram(
      "syncon_explore_check_latency_us",
      obs::HistogramSpec::exponential(1.0, 1 << 22));
  return h;
}

struct Ctx {
  Ctx(const Universe& universe, const ExploreOptions& options,
      const ScheduleCallback& callback)
      : u(universe), opt(options), cb(callback) {}

  const Universe& u;
  const ExploreOptions& opt;
  const ScheduleCallback& cb;

  std::mutex mu;  // guards visited + the two stop-reason flags
  std::unordered_set<TraceKey, KeyHash> visited;
  bool budget_exhausted = false;
  bool stopped_by_callback = false;

  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> traces{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> pruned{0};
  std::atomic<std::uint64_t> dead_ends{0};
  std::atomic<bool> stop{false};
};

/// The lex-least-representative criterion: `e` may not extend `word` when
/// some suffix step it commutes past is lexicographically greater — the
/// equivalent word with `e` moved earlier is smaller and will be (or was)
/// generated instead. Walking stops at the first dependent step, which `e`
/// cannot commute across.
bool lex_pruned(const Universe& u, const std::vector<Step>& word, Step e) {
  for (std::size_t i = word.size(); i-- > 0;) {
    if (dependent(u, e, word[i])) return false;
    if (word[i] > e) return true;
  }
  return false;
}

void handle_complete(Ctx& c, const ScheduleState& st,
                     const std::vector<Step>& word) {
  const std::uint64_t n = c.executed.fetch_add(1) + 1;
  if (c.opt.max_schedules != 0 && n >= c.opt.max_schedules) {
    const std::lock_guard<std::mutex> lock(c.mu);
    c.budget_exhausted = true;
    c.stop.store(true);
  }
  Schedule s{word, st.binding};
  TraceKey key = trace_key(c.u, s);
  bool fresh = false;
  {
    const std::lock_guard<std::mutex> lock(c.mu);
    fresh = c.visited.insert(std::move(key)).second;
  }
  if (!fresh) {
    c.duplicates.fetch_add(1);
    return;
  }
  c.traces.fetch_add(1);
  // The battery runs outside the dedup lock: schedules of distinct traces
  // check concurrently in parallel mode.
  const bool timed = obs::enabled();
  const std::uint64_t t0 = timed ? obs::now_us() : 0;
  const bool keep_going = c.cb(s);
  if (timed) {
    check_latency_histogram().record(
        static_cast<double>(obs::now_us() - t0));
  }
  if (!keep_going) {
    const std::lock_guard<std::mutex> lock(c.mu);
    c.stopped_by_callback = true;
    c.stop.store(true);
  }
}

void dfs(Ctx& c, const ScheduleState& st, std::vector<Step>& word) {
  if (c.stop.load(std::memory_order_relaxed)) return;
  if (st.complete(c.u)) {
    handle_complete(c, st, word);
    return;
  }
  bool extended = false;
  for (const Step e : st.enabled_steps(c.u)) {
    if (c.opt.dpor && lex_pruned(c.u, word, e)) {
      c.pruned.fetch_add(1);
      continue;
    }
    extended = true;
    ScheduleState child = st;
    child.apply(c.u, e);
    word.push_back(e);
    dfs(c, child, word);
    word.pop_back();
    if (c.stop.load(std::memory_order_relaxed)) return;
  }
  // No enabled step, or every extension pruned: the prefix is not a prefix
  // of any canonical word. Backtracking loses nothing — canonical words are
  // prefix-closed, so each is still reached along its own prefix chain.
  if (!extended) c.dead_ends.fetch_add(1);
}

struct Node {
  ScheduleState st;
  std::vector<Step> word;
};

}  // namespace

ExploreStats explore(const Universe& u, const ExploreOptions& options,
                     const ScheduleCallback& on_schedule) {
  Ctx c{u, options, on_schedule};

  if (!options.parallel) {
    std::vector<Step> word;
    word.reserve(u.total_steps());
    dfs(c, ScheduleState(u), word);
  } else {
    // Breadth-first to a frontier wide enough to feed every worker, then
    // depth-first per frontier prefix over the shared visited set. The
    // visited *set* is a property of the universe, so the parallel result
    // is deterministic even though arrival order is not.
    ThreadPool& pool = ThreadPool::shared();
    const std::size_t target = 4 * std::max<std::size_t>(1, pool.thread_count());
    std::vector<Node> frontier;
    frontier.push_back({ScheduleState(u), {}});
    for (std::size_t depth = 0;
         depth < u.total_steps() && frontier.size() < target; ++depth) {
      std::vector<Node> next;
      for (Node& node : frontier) {
        if (node.st.complete(u)) {
          handle_complete(c, node.st, node.word);
          continue;
        }
        bool extended = false;
        for (const Step e : node.st.enabled_steps(u)) {
          if (options.dpor && lex_pruned(u, node.word, e)) {
            c.pruned.fetch_add(1);
            continue;
          }
          extended = true;
          Node child{node.st, node.word};
          child.st.apply(u, e);
          child.word.push_back(e);
          next.push_back(std::move(child));
        }
        if (!extended) c.dead_ends.fetch_add(1);
      }
      frontier = std::move(next);
      if (c.stop.load()) break;
    }
    if (!c.stop.load() && !frontier.empty()) {
      pool.parallel_for(frontier.size(),
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            std::vector<Step> word = frontier[i].word;
                            word.reserve(u.total_steps());
                            dfs(c, frontier[i].st, word);
                          }
                        });
    }
  }

  ExploreStats stats;
  stats.schedules_executed = c.executed.load();
  stats.traces_visited = c.traces.load();
  stats.duplicate_traces = c.duplicates.load();
  stats.prefixes_pruned = c.pruned.load();
  stats.dead_ends = c.dead_ends.load();
  stats.budget_exhausted = c.budget_exhausted;
  stats.stopped_by_callback = c.stopped_by_callback;
  if (obs::enabled()) {
    visited_counter().add(stats.schedules_executed);
    pruned_counter().add(stats.prefixes_pruned);
    dedup_counter().add(stats.duplicate_traces);
    dead_end_counter().add(stats.dead_ends);
  }
  return stats;
}

}  // namespace syncon::explore
