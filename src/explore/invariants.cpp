#include "explore/invariants.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "cuts/watermark.hpp"
#include "model/timestamps.hpp"
#include "nonatomic/interval.hpp"
#include "online/online_monitor.hpp"
#include "online/online_system.hpp"
#include "relations/evaluator.hpp"
#include "sim/faulty_channel.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace syncon::explore {

namespace {

std::string describe(const EventId& e) {
  std::ostringstream os;
  os << e;
  return os.str();
}

struct Firing {
  bool holds = false;
  Confidence conf = Confidence::Definite;

  friend bool operator==(const Firing&, const Firing&) = default;
};

/// Drives a fresh OnlineSystem by the schedule itself: exec steps execute
/// locally, a gather's deliveries are shipped as one deliver_all batch in
/// delivery order at the completing step. Returns the events in execution
/// order (the schedule's linearization of the induced poset).
std::vector<EventId> drive_system(const Universe& u, const Schedule& s,
                                  OnlineSystem& sys) {
  ScheduleState st(u);
  std::vector<std::vector<WireMessage>> pending(u.process_count());
  std::vector<EventId> order;
  order.reserve(u.total_ops());
  for (const Step step : s.word) {
    if (!is_deliver(step)) {
      const ProcessId p = process_of_exec(step);
      const EventId e{p, static_cast<EventIndex>(op_of_exec(step) + 1)};
      sys.local(p);
      order.push_back(e);
      st.apply(u, step);
      continue;
    }
    const UniverseMessage& m = u.messages[message_of(step)];
    pending[m.dst].push_back(
        sys.wire_of({m.src, static_cast<EventIndex>(m.src_op + 1)}));
    const std::uint32_t before = st.cursor[m.dst];
    st.apply(u, step);
    if (st.cursor[m.dst] != before) {
      const EventId e{m.dst, static_cast<EventIndex>(before + 1)};
      sys.deliver_all(m.dst, pending[m.dst]);
      pending[m.dst].clear();
      order.push_back(e);
    }
  }
  return order;
}

}  // namespace

std::optional<unsigned> invariant_mask_from_csv(std::string_view csv) {
  unsigned mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string_view name = csv.substr(pos, comma - pos);
    if (name == "relations") {
      mask |= kInvRelations;
    } else if (name == "online") {
      mask |= kInvOnline;
    } else if (name == "monitor") {
      mask |= kInvMonitor;
    } else if (name == "stability") {
      mask |= kInvStability;
    } else if (name == "compaction") {
      mask |= kInvCompaction;
    } else if (name == "recovery") {
      mask |= kInvRecovery;
    } else if (name == "core") {
      mask |= kInvCore;
    } else if (name == "all") {
      mask |= kInvAll;
    } else if (!name.empty()) {
      return std::nullopt;
    }
    pos = comma + 1;
  }
  return mask;
}

ScheduleCheckResult check_schedule(const Universe& u, const Schedule& s,
                                   const std::vector<EventId>& x_members,
                                   const std::vector<EventId>& y_members,
                                   const InvariantOptions& options) {
  ScheduleCheckResult result;
  const auto fail = [&result](std::string message) {
    result.passed = false;
    result.message = std::move(message);
    return result;
  };

  const std::shared_ptr<const Execution> exec = induced_execution(u, s);
  const Timestamps ts(*exec);
  const NonatomicEvent x(*exec, x_members, "X");
  const NonatomicEvent y(*exec, y_members, "Y");
  RelationEvaluator eval(ts);
  const EventHandle hx = eval.add_event(x);
  const EventHandle hy = eval.add_event(y);

  // The offline verdict payload — 32 relations × both orders — is always
  // computed: it is what cross-schedule comparisons (DPOR vs naive, trace
  // stability) assert on.
  const auto ids = all_relation_ids();
  result.verdicts.reserve(64);
  for (const RelationId& id : ids) {
    result.verdicts.push_back(eval.holds(id, hx, hy));
    result.verdicts.push_back(eval.holds(id, hy, hx));
  }

  if (options.mask & kInvRelations) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const bool fast_xy = result.verdicts[2 * i];
      const bool fast_yx = result.verdicts[2 * i + 1];
      if (fast_xy != eval.holds_naive(ids[i], hx, hy)) {
        return fail("relations: " + to_string(ids[i]) +
                    "(X,Y) fast/naive verdicts differ");
      }
      if (fast_yx != eval.holds_naive(ids[i], hy, hx)) {
        return fail("relations: " + to_string(ids[i]) +
                    "(Y,X) fast/naive verdicts differ");
      }
    }
  }

  // Schedule-driven online system: shared by the online and monitor legs.
  OnlineSystem sys(u.process_count());
  const std::vector<EventId> order = drive_system(u, s, sys);

  if (options.mask & kInvOnline) {
    if (sys.total_executed() != u.total_ops()) {
      return fail("online: executed " +
                  std::to_string(sys.total_executed()) + " events, expected " +
                  std::to_string(u.total_ops()));
    }
    for (const EventId& e : order) {
      if (sys.clock_of(e) != ts.forward_ref(e)) {
        return fail("online: clock of " + describe(e) +
                    " differs from the offline sweep");
      }
    }
    if (options.mask & kInvStability) {
      // A second linearization of the same trace (the replay helper's
      // order) must stamp identical clocks: clocks are a function of the
      // poset, not of the schedule.
      const OnlineSystem alt = replay(*exec);
      for (const EventId& e : order) {
        if (alt.clock_of(e) != sys.clock_of(e)) {
          return fail("stability: clock of " + describe(e) +
                      " depends on the linearization");
        }
      }
    }
  }

  const unsigned monitor_legs =
      options.mask & (kInvMonitor | kInvStability | kInvCompaction |
                      kInvRecovery);
  if (monitor_legs == 0) return result;

  // Monitor legs need disjoint actions; shared events go to X and an empty
  // remainder makes them vacuous (see invariants.hpp).
  std::vector<EventId> y_only;
  for (const EventId& e : y.events()) {
    if (!x.contains(e)) y_only.push_back(e);
  }
  if (y_only.empty()) return result;
  const std::set<EventId> x_set(x.events().begin(), x.events().end());
  const std::set<EventId> y_set(y_only.begin(), y_only.end());

  const auto feed = [&](OnlineMonitor& mon, const WireMessage& report) {
    if (x_set.count(report.source)) {
      mon.ingest("X", report);
    } else if (y_set.count(report.source)) {
      mon.ingest("Y", report);
    } else {
      mon.observe(report);
    }
  };
  const auto verdicts_of = [&](OnlineMonitor& mon) {
    std::vector<Firing> fired;
    for (const RelationId& id : ids) {
      mon.watch(id, "X", "Y",
                [&fired](const std::string&, const std::string&, bool holds,
                         Confidence conf) { fired.push_back({holds, conf}); });
    }
    return fired;
  };
  const auto run_monitor = [&](std::span<const WireMessage> reports) {
    OnlineMonitor mon(u.process_count());
    mon.begin("X");
    mon.begin("Y");
    for (const WireMessage& r : reports) feed(mon, r);
    mon.complete("X");
    mon.complete("Y");
    return verdicts_of(mon);
  };

  std::vector<WireMessage> reports;
  reports.reserve(order.size());
  for (const EventId& e : order) reports.push_back(sys.wire_of(e));

  const std::vector<Firing> clean = run_monitor(reports);
  if (clean.size() != 32) {
    return fail("monitor: expected 32 immediate firings, got " +
                std::to_string(clean.size()));
  }
  if (options.mask & kInvMonitor) {
    // The monitor's "Y" action holds only the Y-only members (shared events
    // were routed to X), so the offline reference is r(X, Y \ X).
    RelationEvaluator mon_eval(ts);
    const EventHandle mx = mon_eval.add_event(x);
    const EventHandle my =
        mon_eval.add_event(NonatomicEvent(*exec, y_only, "Y"));
    for (std::size_t i = 0; i < 32; ++i) {
      if (clean[i].conf != Confidence::Definite) {
        return fail("monitor: " + to_string(ids[i]) + " verdict not Definite");
      }
      if (clean[i].holds != mon_eval.holds(ids[i], mx, my)) {
        return fail("monitor: " + to_string(ids[i]) +
                    " online verdict differs from offline");
      }
    }
  }

  if (options.mask & kInvStability) {
    // Reversed report order: every gap opens and then self-closes, so the
    // verdicts must come out bit-identical — they depend on the trace, not
    // on the feed schedule.
    std::vector<WireMessage> reversed(reports.rbegin(), reports.rend());
    const std::vector<Firing> alt = run_monitor(reversed);
    if (alt.size() != 32) {
      return fail("stability: reversed feed fired " +
                  std::to_string(alt.size()) + " watches, expected 32");
    }
    for (std::size_t i = 0; i < 32; ++i) {
      if (!(alt[i] == clean[i]) || alt[i].conf != Confidence::Definite) {
        return fail("stability: " + to_string(ids[i]) +
                    " verdict depends on the feed order");
      }
    }
  }

  if (options.mask & kInvRecovery) {
    Xoshiro256StarStar rng(options.fault_seed ^ 0x5851f42d4c957f2dULL);
    LinkFaultConfig link;
    link.drop_probability = 0.05 + 0.30 * rng.uniform01();
    link.duplicate_probability = 0.05 + 0.30 * rng.uniform01();
    link.reorder_probability = 0.05 + 0.30 * rng.uniform01();
    link.min_delay = 1;
    link.max_delay = static_cast<Duration>(1 + rng.below(60));
    FaultyChannel channel(link, options.fault_seed ^ 0x9e3779b97f4a7c15ULL);
    TimePoint t = 0;
    for (const WireMessage& r : reports) channel.push(r, t += 5);
    OnlineMonitor faulty(u.process_count());
    faulty.begin("X");
    faulty.begin("Y");
    for (const Arrival& a : channel.drain()) feed(faulty, a.message);
    faulty.checkpoint(sys.snapshot());
    int rounds = 0;
    while (faulty.missing_report_count() > 0) {
      if (++rounds > 64) return fail("recovery: resync failed to converge");
      for (const WireMessage& w : sys.serve(faulty.resync_request())) {
        feed(faulty, w);
      }
    }
    faulty.complete("X");
    faulty.complete("Y");
    const std::vector<Firing> recovered = verdicts_of(faulty);
    if (recovered.size() != 32) {
      return fail("recovery: fired " + std::to_string(recovered.size()) +
                  " watches, expected 32");
    }
    for (std::size_t i = 0; i < 32; ++i) {
      if (recovered[i].conf != Confidence::Definite ||
          !(recovered[i] == clean[i])) {
        return fail("recovery: " + to_string(ids[i]) +
                    " recovered verdict differs from clean");
      }
    }
  }

  if (options.mask & kInvCompaction) {
    // Lossy chunked feed with the authoritative log compacted at the
    // monitor's watermark pin between chunks, against the clean verdicts.
    OnlineSystem subject(u.process_count());
    drive_system(u, s, subject);
    Xoshiro256StarStar rng(options.fault_seed ^ 0xda3e39cb94b95bdbULL);
    LinkFaultConfig link;
    link.drop_probability = 0.05 + 0.30 * rng.uniform01();
    link.duplicate_probability = 0.05 + 0.30 * rng.uniform01();
    link.reorder_probability = 0.05 + 0.30 * rng.uniform01();
    link.min_delay = 1;
    link.max_delay = static_cast<Duration>(1 + rng.below(60));
    FaultyChannel channel(link, options.fault_seed ^ 1);
    TimePoint t = 0;
    for (const WireMessage& r : reports) channel.push(r, t += 5);
    OnlineMonitor mon(u.process_count());
    mon.begin("X");
    mon.begin("Y");
    TimePoint cursor = 0;
    while (true) {
      cursor += 64;
      for (const Arrival& a : channel.pop_ready(cursor)) feed(mon, a.message);
      mon.checkpoint(subject.snapshot());
      int rounds = 0;
      while (mon.missing_report_count() > 0) {
        if (++rounds > 512) {
          return fail("compaction: chunked resync failed to converge");
        }
        for (const WireMessage& w : subject.serve(mon.resync_request(8))) {
          feed(mon, w);
        }
      }
      const VectorClock pins[] = {mon.watermark_pin()};
      subject.compact(low_watermark(pins));
      if (channel.in_transit() == 0) break;
    }
    mon.complete("X");
    mon.complete("Y");
    const std::vector<Firing> compacted = verdicts_of(mon);
    if (compacted.size() != 32) {
      return fail("compaction: fired " + std::to_string(compacted.size()) +
                  " watches, expected 32");
    }
    for (std::size_t i = 0; i < 32; ++i) {
      if (compacted[i].conf != Confidence::Definite ||
          !(compacted[i] == clean[i])) {
        return fail("compaction: " + to_string(ids[i]) +
                    " compacted verdict differs from clean");
      }
    }
  }

  return result;
}

}  // namespace syncon::explore
