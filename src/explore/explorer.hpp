// Stateless DPOR-style schedule enumeration (DESIGN.md §3.14).
//
// The explorer walks the tree of valid schedule prefixes of a Universe in
// depth-first order and visits each Mazurkiewicz-trace equivalence class
// ("same induced poset") exactly once. Pruning is the lex-least-word
// criterion over the static dependence relation: a step `e` may extend a
// prefix only if no suffix step it is independent of (walking backwards
// until the first dependent step) is lexicographically greater than `e`.
// The complete words that survive are exactly the lexicographically least
// representatives of their trace classes — a sleep-set-equivalent pruning
// keyed on commuting independent deliveries. Because the dependence
// relation is a sound over-approximation, conservatism can only produce
// duplicate canonical words for one poset; an exact trace-key dedup absorbs
// those, so the callback fires once per inequivalent schedule.
#pragma once

#include <cstdint>
#include <functional>

#include "explore/universe.hpp"

namespace syncon::explore {

struct ExploreOptions {
  /// Stop after this many complete schedules (0 = unbounded). With DPOR on,
  /// "schedules" counts canonical words reached, not raw interleavings.
  std::uint64_t max_schedules = 0;
  /// Disable pruning: enumerate every valid interleaving (the naive
  /// baseline DPOR reduction is measured against). Trace dedup still runs,
  /// so the callback set is identical — only the work differs.
  bool dpor = true;
  /// Run the exploration frontier over ThreadPool::shared(). The visited
  /// trace set is shared; the callback must then be thread-safe. The set of
  /// traces visited is deterministic (it is a property of the universe);
  /// arrival order is not.
  bool parallel = false;
};

struct ExploreStats {
  /// Complete schedules reached (canonical words under DPOR).
  std::uint64_t schedules_executed = 0;
  /// Inequivalent schedules: distinct trace keys — the callback count.
  std::uint64_t traces_visited = 0;
  /// Canonical words deduplicated by the exact trace key (the price of the
  /// conservative static dependence relation).
  std::uint64_t duplicate_traces = 0;
  /// Prefix extensions rejected by the lex-least criterion.
  std::uint64_t prefixes_pruned = 0;
  /// Prefixes with no enabled extension before completion.
  std::uint64_t dead_ends = 0;
  /// True when max_schedules stopped the walk (enumeration incomplete).
  bool budget_exhausted = false;
  /// True when the callback requested a stop.
  bool stopped_by_callback = false;
};

/// Called once per inequivalent schedule, with the canonical schedule that
/// first reached its trace. Return false to stop the exploration (e.g.
/// after recording a violation). Must be thread-safe when
/// ExploreOptions::parallel is set.
using ScheduleCallback = std::function<bool(const Schedule&)>;

/// Enumerates the universe's schedules. Deterministic for a fixed universe
/// and options (parallel mode: the visited set and all counters are
/// deterministic when the walk runs to completion; arrival order is not).
/// Publishes syncon_explore_* counters and the per-schedule check-latency
/// histogram to MetricRegistry::global() when obs is enabled.
ExploreStats explore(const Universe& u, const ExploreOptions& options,
                     const ScheduleCallback& on_schedule);

}  // namespace syncon::explore
