// The per-schedule invariant battery (DESIGN.md §3.14).
//
// Once the explorer hands over one canonical schedule per inequivalent
// trace, every cross-layer identity the repository claims becomes provable
// on *every* poset of the universe, not just the sampled one:
//
//   relations   all 32 relations × both argument orders: Theorem 20 fast
//               path ≡ naive proxy quantification on the induced execution
//               (catches fast-path bugs like the planted wrong_r2 hook on
//               every poset, deterministically).
//   online      OnlineSystem driven step-by-step by the schedule itself:
//               every logged clock ≡ the offline Timestamps sweep.
//   monitor     OnlineMonitor fed the schedule's report order: 32 Definite
//               verdicts ≡ the offline fast evaluator.
//   stability   a second linearization of the *same* trace (reversed feed,
//               replay-ordered system): bit-identical verdicts and clocks —
//               verdicts are a function of the poset, never the schedule.
//   compaction  lossy chunked feed with the log compacted at the watermark
//               pin ≡ the clean uncompacted verdicts.
//   recovery    lossy feed + checkpoint/resync recovery ≡ clean verdicts,
//               all Definite.
//
// The monitor-based legs are skipped (vacuously) when Y ⊆ X leaves no
// Y-only member, since the monitor forbids two actions claiming one event.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "explore/universe.hpp"

namespace syncon::explore {

enum : unsigned {
  kInvRelations = 1u << 0,
  kInvOnline = 1u << 1,
  kInvMonitor = 1u << 2,
  kInvStability = 1u << 3,
  kInvCompaction = 1u << 4,
  kInvRecovery = 1u << 5,
};

/// The cheap always-on legs (what `schedule_invariance` runs per trace).
inline constexpr unsigned kInvCore =
    kInvRelations | kInvOnline | kInvMonitor | kInvStability;
inline constexpr unsigned kInvAll =
    kInvCore | kInvCompaction | kInvRecovery;

/// Parses a comma-separated invariant list ("relations,online,monitor,
/// stability,compaction,recovery", plus the aliases "core" and "all").
/// nullopt on an unknown name.
std::optional<unsigned> invariant_mask_from_csv(std::string_view csv);

struct InvariantOptions {
  unsigned mask = kInvCore;
  /// Seeds the fault plans of the compaction / recovery legs.
  std::uint64_t fault_seed = 0;
};

struct ScheduleCheckResult {
  bool passed = true;
  /// On failure: which leg / relation / event diverged.
  std::string message;
  /// The 64 offline verdicts (32 relations × both orders) of the schedule's
  /// induced poset — the payload DPOR-vs-naive comparisons assert on.
  std::vector<bool> verdicts;
};

/// Runs the selected invariant legs on one complete schedule. Pure function
/// of (universe, schedule, members, options) — safe to call concurrently
/// from the explorer's parallel frontier. X/Y member ids refer to per-op
/// events, which exist in every schedule of the universe.
ScheduleCheckResult check_schedule(const Universe& u, const Schedule& s,
                                   const std::vector<EventId>& x_members,
                                   const std::vector<EventId>& y_members,
                                   const InvariantOptions& options = {});

}  // namespace syncon::explore
