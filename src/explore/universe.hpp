// The delivery-schedule universe — the input language of the explorer
// (DESIGN.md §3.14).
//
// A Universe abstracts an execution into per-process *op scripts* plus a
// free-floating message set. Each op either executes immediately (a local
// or send event) or is a receive slot of fixed arity that a schedule fills
// with messages one delivery at a time. What the original execution pinned
// down — which message lands in which receive — becomes a schedule choice:
// two schedules that bind the messages differently induce different
// happens-before posets, while two schedules with the same binding induce
// the same poset in a different linearization. That is exactly the
// Mazurkiewicz-trace equivalence of arXiv 1410.1209 ("same partial order"),
// and the explorer enumerates one canonical schedule per equivalence class.
//
// Event identities survive rebinding: process p's k-th op always produces
// event (p, k+1) in every induced execution, so nonatomic-event member sets
// expressed as EventIds stay valid across every schedule of the universe.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "model/execution.hpp"

namespace syncon::explore {

/// One scripted step of a process. recv_arity == 0 means the op executes on
/// its own (local or send); k > 0 means the op is a gather of k messages
/// and completes when a schedule has delivered k messages into it. Either
/// kind may also source messages (`sends`): a receive event is a legal
/// message source (piggybacked forwarding).
struct UniverseOp {
  std::uint32_t recv_arity = 0;
  std::vector<std::uint32_t> sends;  // message ids sourced by this op's event
};

/// One message of the universe. The source event and destination process
/// are fixed; the receive slot on `dst` is the schedule's choice.
struct UniverseMessage {
  ProcessId src = 0;
  std::uint32_t src_op = 0;  // op index on src (event (src, src_op + 1))
  ProcessId dst = 0;
};

struct Universe {
  std::vector<std::vector<UniverseOp>> ops;  // per process, program order
  std::vector<UniverseMessage> messages;

  std::size_t process_count() const { return ops.size(); }
  std::size_t total_ops() const;
  /// Schedule length: one step per non-receive op + one per message.
  std::size_t total_steps() const;
};

/// Extracts the universe of an execution: event (p, i) becomes op i-1 of
/// process p with recv_arity = |incoming(e)|, and each message becomes a
/// UniverseMessage keeping its source event and destination process but
/// dropping its target binding. The execution's own schedule is one member
/// of the universe's schedule set.
Universe universe_from_execution(const Execution& exec);

// ---------------------------------------------------------------------------
// Schedule steps. Encoded in one u32 so words are cheap to store and the
// explorer's canonical order is just integer <. Exec steps sort before
// Deliver steps; Exec by (process, op), Deliver by message id.
// ---------------------------------------------------------------------------

using Step = std::uint32_t;
inline constexpr Step kDeliverBit = 0x8000'0000u;

inline Step exec_step(ProcessId p, std::uint32_t op) {
  return (static_cast<Step>(p) << 16) | op;
}
inline Step deliver_step(std::uint32_t message) {
  return kDeliverBit | message;
}
inline bool is_deliver(Step s) { return (s & kDeliverBit) != 0; }
inline std::uint32_t message_of(Step s) { return s & ~kDeliverBit; }
inline ProcessId process_of_exec(Step s) {
  return static_cast<ProcessId>(s >> 16);
}
inline std::uint32_t op_of_exec(Step s) { return s & 0xFFFFu; }

/// The static dependence relation the canonical enumeration prunes with.
/// Over-approximates "cannot commute": two independent adjacent steps can
/// always be swapped without changing validity, the message binding, or the
/// induced poset (soundness argument in DESIGN.md §3.14). Conservatism only
/// costs duplicate canonical words, which the trace-key dedup absorbs.
bool dependent(const Universe& u, Step a, Step b);

// ---------------------------------------------------------------------------
// Schedule replay state
// ---------------------------------------------------------------------------

/// Mutable cursor state of one schedule prefix. Small (a few vectors of
/// ints), copied freely by the explorer's DFS frames and parallel frontier.
struct ScheduleState {
  explicit ScheduleState(const Universe& u);

  std::vector<std::uint32_t> cursor;   // next op per process
  std::vector<std::uint32_t> filled;   // deliveries into the current recv
  std::vector<std::uint8_t> delivered;   // per message
  std::vector<std::uint32_t> binding;    // message -> recv op index on dst
  std::uint32_t steps_taken = 0;

  static constexpr std::uint32_t kUnbound = 0xFFFF'FFFFu;

  bool enabled(const Universe& u, Step s) const;
  /// Applies an enabled step (advances cursors, records bindings).
  void apply(const Universe& u, Step s);
  /// All enabled steps, in canonical (integer) order.
  std::vector<Step> enabled_steps(const Universe& u) const;
  bool complete(const Universe& u) const {
    return steps_taken == u.total_steps();
  }
};

/// A complete schedule: the step word plus the binding it induced.
struct Schedule {
  std::vector<Step> word;
  std::vector<std::uint32_t> binding;  // message -> recv op index on dst
};

/// Canonical identity of the induced poset: for every receive op (process
/// major, op order), the sorted multiset of bound source events. Two
/// schedules induce the same happens-before poset iff their trace keys are
/// equal — messages with identical (src, src_op, dst) are interchangeable,
/// which a raw binding vector would miss.
using TraceKey = std::vector<std::uint64_t>;
TraceKey trace_key(const Universe& u, const Schedule& s);

/// Rebuilds the induced execution of a complete schedule through
/// ExecutionBuilder (so it passes the same acyclicity validation as every
/// other execution in the library). Sources of each receive are the bound
/// messages' source events.
std::shared_ptr<const Execution> induced_execution(const Universe& u,
                                                   const Schedule& s);

}  // namespace syncon::explore
