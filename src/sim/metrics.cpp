#include "sim/metrics.hpp"

#include "model/scalar_clock.hpp"
#include "support/contracts.hpp"

namespace syncon {

ExecutionMetrics measure_execution(const Timestamps& ts,
                                   std::size_t sample_pairs,
                                   std::uint64_t seed) {
  const Execution& exec = ts.execution();
  ExecutionMetrics m;
  m.processes = exec.process_count();
  m.events = exec.total_real_count();
  m.messages = exec.messages().size();
  m.message_density =
      m.events == 0 ? 0.0
                    : static_cast<double>(m.messages) /
                          static_cast<double>(m.events);
  const ScalarClocks scalar(exec);
  m.critical_path = scalar.critical_path_length();
  m.parallelism = m.critical_path == 0
                      ? 0.0
                      : static_cast<double>(m.events) /
                            static_cast<double>(m.critical_path);
  const auto& order = exec.topological_order();
  if (order.size() >= 2 && sample_pairs > 0) {
    Xoshiro256StarStar rng(seed);
    std::size_t concurrent = 0;
    for (std::size_t i = 0; i < sample_pairs; ++i) {
      const EventId a = order[rng.below(order.size())];
      const EventId b = order[rng.below(order.size())];
      if (a != b && ts.concurrent(a, b)) ++concurrent;
    }
    m.concurrency_ratio = static_cast<double>(concurrent) /
                          static_cast<double>(sample_pairs);
  }
  return m;
}

}  // namespace syncon
