// Discrete-event simulation engine: the substrate that plays the role of a
// real distributed real-time system. Unlike the structural generators in
// workload.hpp (which create causal shape only), the engine drives process
// behaviors through simulated time — message latencies, processing delays
// and timers — and emits a trace whose physical timeline and causal
// structure are consistent by construction.
//
// Usage: subclass DesProcess, implement the three callbacks, register the
// processes with a DesEngine, run, and collect the Execution +
// PhysicalTimes + labeled intervals.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model/execution.hpp"
#include "nonatomic/interval.hpp"
#include "sim/faulty_channel.hpp"
#include "support/rng.hpp"
#include "timing/physical_time.hpp"

namespace syncon {

class DesContext;

/// Payload of a simulated message: sender + an application tag + a value.
struct DesMessage {
  ProcessId from = 0;
  std::uint64_t tag = 0;
  std::int64_t value = 0;
};

/// Application behavior of one process. Callbacks run when the process is
/// activated; they use the context to execute events, send messages and
/// arm timers.
class DesProcess {
 public:
  virtual ~DesProcess() = default;
  /// Called once at simulation start.
  virtual void on_start(DesContext& ctx) { (void)ctx; }
  /// Called when a message is delivered (the receive event has already been
  /// recorded by the engine).
  virtual void on_message(DesContext& ctx, const DesMessage& message) {
    (void)ctx;
    (void)message;
  }
  /// Called when a timer fires. Timers do NOT create events by themselves.
  virtual void on_timer(DesContext& ctx, std::uint64_t timer_id) {
    (void)ctx;
    (void)timer_id;
  }
};

struct DesConfig {
  /// Message latency window (µs), sampled uniformly per message.
  Duration min_latency = 200;
  Duration max_latency = 3000;
  /// Probability that a message is lost in transit (the send event still
  /// occurs; no delivery is scheduled). Models the fault environment that
  /// makes timeout/retry protocols — and their causal analysis — matter.
  double loss_probability = 0.0;
  /// Probability the transport redelivers a message (at-least-once). The
  /// engine's protocol layer suppresses the duplicate at the receiver (no
  /// second receive event) and counts it in fault_stats().
  double duplicate_probability = 0.0;
  /// Probability a delivery takes a stale route: an extra delay of up to
  /// max_latency is added, letting later sends overtake it.
  double reorder_probability = 0.0;
  /// Crash-and-restart schedule: a process inside a crash window receives
  /// no deliveries or timer firings (they are silently discarded) and so
  /// executes nothing until an activation after restart reaches it.
  std::vector<CrashWindow> crashes;
  std::uint64_t seed = 1;
};

/// What the simulated transport did to the traffic.
struct DesFaultStats {
  std::uint64_t lost = 0;                   ///< deliveries never scheduled
  std::uint64_t duplicates_scheduled = 0;   ///< redeliveries injected
  std::uint64_t duplicates_suppressed = 0;  ///< redeliveries caught at rcvr
  std::uint64_t reordered = 0;              ///< stale-route delay penalties
  std::uint64_t crash_discarded = 0;        ///< activations to crashed procs
};

/// Mirrors the fault accounting into MetricRegistry::global() as
/// syncon_des_* gauges, so exporters report exactly the numbers
/// fault_stats() returns (DESIGN.md §3.8).
void publish_des_fault_metrics(const DesFaultStats& stats);

/// API handed to process callbacks.
class DesContext {
 public:
  ProcessId self() const { return process_; }
  TimePoint now() const;

  /// Executes a local event after `processing` µs of local work.
  EventId execute(Duration processing);

  /// Executes a send event after `processing` µs and ships the message with
  /// an engine-sampled latency. Returns the send event.
  EventId send(ProcessId to, std::uint64_t tag, std::int64_t value,
               Duration processing);

  /// One send event delivered to every listed destination (true multicast:
  /// all receives are causally after the single send). Latency and loss are
  /// sampled per destination.
  EventId multicast(std::span<const ProcessId> to, std::uint64_t tag,
                    std::int64_t value, Duration processing);

  /// Arms a timer that fires `delay` µs from now.
  void set_timer(Duration delay, std::uint64_t timer_id);

  /// The receive event of the message currently being handled (valid inside
  /// on_message only).
  EventId current_receive() const;

  /// Tags an event as part of the labeled nonatomic action.
  void mark(const std::string& interval_label, EventId e);

 private:
  friend class DesEngine;
  DesContext(class DesEngine& engine, ProcessId process)
      : engine_(&engine), process_(process) {}
  class DesEngine* engine_;
  ProcessId process_;
};

class DesEngine {
 public:
  /// Result of a finished simulation. The execution is heap-held so the
  /// intervals and times stay valid.
  struct Result {
    std::shared_ptr<const Execution> execution;
    std::shared_ptr<const PhysicalTimes> times;
    std::vector<NonatomicEvent> intervals;
  };

  DesEngine(std::vector<std::unique_ptr<DesProcess>> processes,
            const DesConfig& config);
  ~DesEngine();

  /// Runs until the event queue drains or simulated time passes `until`.
  void run(TimePoint until);

  /// Finalizes the trace. The engine must not be run afterwards.
  Result finish();

  std::size_t events_executed() const;

  /// Transport-fault accounting for the run so far.
  const DesFaultStats& fault_stats() const;

  /// publish_des_fault_metrics(fault_stats()) plus the engine's event count
  /// (syncon_des_events_executed gauge).
  void publish_metrics() const;

 private:
  friend class DesContext;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace syncon
