// Synthetic distributed executions. This substrate stands in for the
// "recorded trace of a distributed computation" that the paper's Problem 4
// assumes (see DESIGN.md §6): the relations are functions of causal shape
// only, so seeded generators that sweep process counts, message densities
// and communication topologies exercise exactly the code paths real traces
// would.
#pragma once

#include <cstdint>

#include "model/execution.hpp"
#include "support/rng.hpp"

namespace syncon {

/// Communication structure of the generated execution.
enum class Topology {
  Random,        // uniformly random point-to-point messages
  Ring,          // each process messages its successor
  ClientServer,  // clients exchange request/reply with process 0
  Broadcast,     // periodic one-to-all multicasts
  Phases,        // barrier-style phases through a coordinator
};

const char* to_string(Topology t);

struct WorkloadConfig {
  std::size_t process_count = 4;
  /// Target number of real events per process (the generator lands close to
  /// this; receives may add a few).
  std::size_t events_per_process = 24;
  /// Probability that a generated event is a send (vs a local event).
  double send_probability = 0.3;
  /// Probability that a process drains a pending message before generating
  /// new work (higher = tighter causal coupling).
  double receive_probability = 0.7;
  Topology topology = Topology::Random;
  /// Number of barrier rounds for Topology::Phases.
  std::size_t phase_count = 4;
  std::uint64_t seed = 1;
};

/// Generates a deterministic execution from the config.
Execution generate_execution(const WorkloadConfig& config);

/// Size/shape envelope for sampling random workload configs (the
/// conformance fuzzer's execution generator; see src/check).
struct WorkloadBounds {
  std::size_t min_processes = 2;
  std::size_t max_processes = 12;
  std::size_t min_events_per_process = 3;
  std::size_t max_events_per_process = 48;
  double min_send_probability = 0.05;
  double max_send_probability = 0.6;
  std::size_t max_phase_count = 6;
};

/// Samples a WorkloadConfig uniformly within `bounds` (topology uniform over
/// all five). The config's own seed is drawn from `rng`, so the resulting
/// execution is a pure function of the caller's rng state.
WorkloadConfig random_workload_config(Xoshiro256StarStar& rng,
                                      const WorkloadBounds& bounds = {});

}  // namespace syncon
