// Long-running soak harness for the retention subsystem (DESIGN.md §3.10):
// a ring of processes exchanging clock-stamped messages over a faulty
// network, a feed-only OnlineMonitor consuming every event report over
// per-process lossy channels, tracked action pairs opening / completing /
// being forgotten continuously, and the authoritative log compacted at the
// composed low watermark (monitor pin ∧ harness app pin) on a fixed cadence.
//
// The harness exists to demonstrate — and let tests/benchmarks assert —
// the three retention guarantees:
//   (a) verdict identity: the Definite-firing sequence of a faulty,
//       compacted run is bit-identical to the clean, uncompacted run;
//   (b) bounded memory: the live log plateaus instead of growing with the
//       event count;
//   (c) checkpoint serving: a late-joining monitor whose resync crosses the
//       watermark converges via surface reports + adopt_checkpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/execution.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "online/online_monitor.hpp"
#include "sim/faulty_channel.hpp"

namespace syncon {

/// Knobs of one soak run. Everything is deterministic in (config, seed).
struct SoakConfig {
  std::size_t processes = 4;
  /// Main-loop cycles; every cycle each process sends once around the ring.
  std::uint64_t cycles = 2000;
  /// Open one tracked action pair every this many cycles.
  std::uint64_t action_every = 8;
  /// Checkpoint + chunked-resync recovery cadence.
  std::uint64_t recover_every = 32;
  /// Compaction cadence (0 = never compact — the uncompacted baseline).
  std::uint64_t compact_every = 64;
  /// Per-round cap on resync request size (GapTracker::missing limit).
  std::size_t resync_chunk = 256;
  /// Cycles before an undelivered application send is re-shipped from
  /// wire_of — the harness-level retransmission that keeps the ring
  /// converging under drops.
  std::uint64_t retransmit_after = 4;
  /// Faults on the application ring links (drops here change the execution
  /// itself — leave at zero for verdict-identity comparisons).
  LinkFaultConfig app_link;
  /// Faults on the event-report feed to the monitor.
  LinkFaultConfig report_link;
  std::uint64_t seed = 1;
  /// After the run, spin up a fresh feed-only monitor and resync it across
  /// the watermark (exercises checkpoint serving + adopt_checkpoint).
  bool late_joiner_probe = false;
  /// Causal-observability capture (DESIGN.md §3.13): turns on the monitor's
  /// detection-latency tracking and the flight recorder for the run, and
  /// fills SoakResult::waterfalls / flight / execution (the latter only for
  /// uncompacted runs, where the full execution is still materializable).
  bool capture_observability = false;
  /// Called at the end of every main-loop cycle — the live-observation hook
  /// (serve scrape requests, publish metrics) for daemon-shaped harnesses.
  std::function<void(std::uint64_t cycle)> on_cycle;
};

/// What one soak run produced.
struct SoakResult {
  /// Events executed by the system (sends + receives + action locals).
  std::uint64_t executed_events = 0;
  /// Retention counters at the end of the run.
  std::uint64_t reclaimed_events = 0;
  std::uint64_t compactions = 0;
  std::size_t live_log_peak = 0;
  std::size_t live_log_final = 0;
  /// Live-log size sampled right after each compaction — the plateau the
  /// soak test / bench asserts on.
  std::vector<std::size_t> live_log_samples;
  /// "x|y|holds" per Definite watch firing, in firing order — the
  /// bit-identity payload: equal across clean/faulty/compacted runs.
  std::vector<std::string> definite_verdicts;
  std::uint64_t definite_fires = 0;
  std::uint64_t pending_fires = 0;
  std::uint64_t duplicate_reports = 0;
  std::uint64_t resync_rounds = 0;
  ChannelStats app_stats;
  ChannelStats report_stats;
  /// Late-joiner probe results (late_joiner_probe only).
  bool late_joiner_converged = false;
  /// Resync replies answered from the retention checkpoint's surface.
  std::uint64_t surface_replies = 0;
  /// capture_observability only: the retained verdict waterfalls, the
  /// flight-recorder contents at the end of the run, and (for uncompacted
  /// runs) the full execution for causal-trace export.
  std::vector<obs::Waterfall> waterfalls;
  std::vector<obs::FlightRecord> flight;
  std::shared_ptr<const Execution> execution;
};

/// Runs the soak scenario. Deterministic: same config → same result,
/// bit for bit.
SoakResult run_soak(const SoakConfig& config);

// --- multi-tenant tenant scripts (DESIGN.md §3.15) ---------------------------
//
// One *tenant* is one independently monitored execution. Its entire monitor-
// side traffic — action lifecycle, journaled events, lossy event reports,
// checkpoint broadcasts — is flattened into a deterministic op sequence
// (TenantScript) that can be applied anywhere: directly (the standalone
// offline baseline), or encoded through the service wire codec into a
// sharded daemon. Verdict identity between those two consumers is the
// service's headline guarantee: framing, sharding, backpressure and
// memory-budget compaction must not perturb any tenant's verdict stream.

/// One monitor-side operation of a tenant's feed. The op carries everything
/// its application needs — ops are self-contained so a session can be fed
/// from a wire decoder with no side channel.
struct TenantOp {
  enum class Kind : std::uint8_t {
    kBegin,       ///< open action `label`
    kWatch,       ///< watch `relation`(label, label2)
    kComplete,    ///< complete action `label`
    kForget,      ///< forget action `label` (and its event→label routes)
    kEvent,       ///< journal replay: restore_event(event, clock, sources, time)
    kReport,      ///< lossy report of `event` (route to `label`, or observe)
    kCheckpoint,  ///< authoritative snapshot `clock` + resync-to-convergence
  };

  Kind kind = Kind::kEvent;
  std::string label;              ///< see Kind (empty = unroutable report)
  std::string label2;             ///< kWatch: the y action
  RelationId relation{};          ///< kWatch
  EventId event{};                ///< kEvent / kReport
  VectorClock clock;              ///< kEvent / kReport / kCheckpoint
  std::vector<EventId> sources;   ///< kEvent: journaled receive sources
  std::int64_t time = OnlineSystem::kNoTime;  ///< kEvent

  friend bool operator==(const TenantOp&, const TenantOp&) = default;
};

/// Knobs of one tenant's generated workload. Deterministic in (fields, seed).
struct TenantWorkload {
  std::size_t processes = 3;
  std::uint64_t cycles = 18;
  std::uint64_t action_every = 4;
  std::uint64_t recover_every = 8;
  std::size_t resync_chunk = 64;
  /// Faults on the event-report feed (the journal stream stays reliable —
  /// it is the authoritative WAL-shaped stream).
  LinkFaultConfig report_link;
  std::uint64_t seed = 1;
};

/// One tenant's flattened traffic plus the reference outcome of applying it.
struct TenantScript {
  std::size_t processes = 0;
  std::size_t resync_chunk = 0;
  std::vector<TenantOp> ops;
  std::uint64_t executed_events = 0;
  /// Definite verdict log of the generation-time reference session — the
  /// bit-identity baseline every other consumer is compared against.
  std::vector<std::string> reference_verdicts;
  std::uint64_t reference_quarantined = 0;
};

/// The per-tenant session state machine: a replica OnlineSystem (rebuilt
/// from kEvent ops, serves resyncs and retention) plus a feed-only
/// OnlineMonitor. Ops are applied in stream order; any op whose contract
/// fails (a corrupted or spliced wire stream) is quarantined — counted,
/// never fatal, never visible to other sessions. Not movable: watch
/// callbacks capture `this`.
class TenantSessionCore {
 public:
  explicit TenantSessionCore(std::size_t processes,
                             std::size_t resync_chunk = 64);

  TenantSessionCore(const TenantSessionCore&) = delete;
  TenantSessionCore& operator=(const TenantSessionCore&) = delete;

  /// Applies one op; a ContractViolation quarantines the op instead of
  /// propagating.
  void apply(const TenantOp& op);

  /// "x|y|holds" per Definite watch firing, in firing order.
  const std::vector<std::string>& definite_verdicts() const {
    return verdicts_;
  }
  /// True once a Definite verdict has fired for the labeled action.
  bool definite(const std::string& label) const {
    return definite_labels_.count(label) != 0;
  }

  /// Ops + reports rejected so far (session-level contract catches plus the
  /// monitor's own wire quarantine).
  std::uint64_t quarantined() const {
    return quarantined_ops_ + monitor_.quarantined();
  }
  std::uint64_t ops_applied() const { return applied_; }

  /// Compacts the replica log at the monitor's retention pin; returns log
  /// entries reclaimed. Safe at any op boundary: the pin keeps every event
  /// a future resync or open action can still need (DESIGN.md §3.10).
  std::size_t compact_at_pin();

  const OnlineSystem& system() const { return sys_; }
  const OnlineMonitor& monitor() const { return monitor_; }

 private:
  void apply_checked(const TenantOp& op);
  /// try_ingest when the label names a live action, try_observe otherwise —
  /// the routing rule shared by the report feed and the resync loop.
  void route_report(const std::string& label, const WireMessage& report);

  OnlineSystem sys_;
  OnlineMonitor monitor_;
  std::size_t resync_chunk_;
  std::unordered_map<EventId, std::string> label_of_;
  std::unordered_map<std::string, std::vector<EventId>> events_of_label_;
  std::unordered_set<std::string> definite_labels_;
  std::vector<std::string> verdicts_;
  std::uint64_t quarantined_ops_ = 0;
  std::uint64_t applied_ = 0;
};

/// Generates one tenant's script: a ring + tracked-action-pair workload
/// (run_soak's shape, sized per tenant) with seeded faults on the report
/// feed, flattened to ops. Deterministic: same workload → same script and
/// the same reference verdicts, bit for bit.
TenantScript generate_tenant_script(const TenantWorkload& workload);

/// The standalone offline baseline: applies the script to a fresh session
/// and returns its Definite verdict log (equals reference_verdicts — and
/// must equal any daemon-hosted replay of the same script).
std::vector<std::string> run_tenant_script(const TenantScript& script);

}  // namespace syncon
