// Long-running soak harness for the retention subsystem (DESIGN.md §3.10):
// a ring of processes exchanging clock-stamped messages over a faulty
// network, a feed-only OnlineMonitor consuming every event report over
// per-process lossy channels, tracked action pairs opening / completing /
// being forgotten continuously, and the authoritative log compacted at the
// composed low watermark (monitor pin ∧ harness app pin) on a fixed cadence.
//
// The harness exists to demonstrate — and let tests/benchmarks assert —
// the three retention guarantees:
//   (a) verdict identity: the Definite-firing sequence of a faulty,
//       compacted run is bit-identical to the clean, uncompacted run;
//   (b) bounded memory: the live log plateaus instead of growing with the
//       event count;
//   (c) checkpoint serving: a late-joining monitor whose resync crosses the
//       watermark converges via surface reports + adopt_checkpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/execution.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "sim/faulty_channel.hpp"

namespace syncon {

/// Knobs of one soak run. Everything is deterministic in (config, seed).
struct SoakConfig {
  std::size_t processes = 4;
  /// Main-loop cycles; every cycle each process sends once around the ring.
  std::uint64_t cycles = 2000;
  /// Open one tracked action pair every this many cycles.
  std::uint64_t action_every = 8;
  /// Checkpoint + chunked-resync recovery cadence.
  std::uint64_t recover_every = 32;
  /// Compaction cadence (0 = never compact — the uncompacted baseline).
  std::uint64_t compact_every = 64;
  /// Per-round cap on resync request size (GapTracker::missing limit).
  std::size_t resync_chunk = 256;
  /// Cycles before an undelivered application send is re-shipped from
  /// wire_of — the harness-level retransmission that keeps the ring
  /// converging under drops.
  std::uint64_t retransmit_after = 4;
  /// Faults on the application ring links (drops here change the execution
  /// itself — leave at zero for verdict-identity comparisons).
  LinkFaultConfig app_link;
  /// Faults on the event-report feed to the monitor.
  LinkFaultConfig report_link;
  std::uint64_t seed = 1;
  /// After the run, spin up a fresh feed-only monitor and resync it across
  /// the watermark (exercises checkpoint serving + adopt_checkpoint).
  bool late_joiner_probe = false;
  /// Causal-observability capture (DESIGN.md §3.13): turns on the monitor's
  /// detection-latency tracking and the flight recorder for the run, and
  /// fills SoakResult::waterfalls / flight / execution (the latter only for
  /// uncompacted runs, where the full execution is still materializable).
  bool capture_observability = false;
  /// Called at the end of every main-loop cycle — the live-observation hook
  /// (serve scrape requests, publish metrics) for daemon-shaped harnesses.
  std::function<void(std::uint64_t cycle)> on_cycle;
};

/// What one soak run produced.
struct SoakResult {
  /// Events executed by the system (sends + receives + action locals).
  std::uint64_t executed_events = 0;
  /// Retention counters at the end of the run.
  std::uint64_t reclaimed_events = 0;
  std::uint64_t compactions = 0;
  std::size_t live_log_peak = 0;
  std::size_t live_log_final = 0;
  /// Live-log size sampled right after each compaction — the plateau the
  /// soak test / bench asserts on.
  std::vector<std::size_t> live_log_samples;
  /// "x|y|holds" per Definite watch firing, in firing order — the
  /// bit-identity payload: equal across clean/faulty/compacted runs.
  std::vector<std::string> definite_verdicts;
  std::uint64_t definite_fires = 0;
  std::uint64_t pending_fires = 0;
  std::uint64_t duplicate_reports = 0;
  std::uint64_t resync_rounds = 0;
  ChannelStats app_stats;
  ChannelStats report_stats;
  /// Late-joiner probe results (late_joiner_probe only).
  bool late_joiner_converged = false;
  /// Resync replies answered from the retention checkpoint's surface.
  std::uint64_t surface_replies = 0;
  /// capture_observability only: the retained verdict waterfalls, the
  /// flight-recorder contents at the end of the run, and (for uncompacted
  /// runs) the full execution for causal-trace export.
  std::vector<obs::Waterfall> waterfalls;
  std::vector<obs::FlightRecord> flight;
  std::shared_ptr<const Execution> execution;
};

/// Runs the soak scenario. Deterministic: same config → same result,
/// bit for bit.
SoakResult run_soak(const SoakConfig& config);

}  // namespace syncon
