// Structural metrics of an execution — used to characterize benchmark
// workloads (how coupled is the trace?) and to sanity-check generators.
#pragma once

#include <cstdint>

#include "model/timestamps.hpp"
#include "support/rng.hpp"

namespace syncon {

struct ExecutionMetrics {
  std::size_t processes = 0;
  std::size_t events = 0;
  std::size_t messages = 0;
  /// messages per real event.
  double message_density = 0.0;
  /// Estimated fraction of real-event pairs that are concurrent (sampled).
  double concurrency_ratio = 0.0;
  /// Longest causal chain (critical path) through the computation.
  std::uint64_t critical_path = 0;
  /// events / critical_path — the available parallelism.
  double parallelism = 0.0;
};

/// Computes the metrics; concurrency is estimated from `sample_pairs`
/// random pairs (exact for small traces would be O(|E|²)).
ExecutionMetrics measure_execution(const Timestamps& ts,
                                   std::size_t sample_pairs = 20000,
                                   std::uint64_t seed = 1);

}  // namespace syncon
