// The distributed real-time application scenarios the paper motivates in its
// introduction (industrial process control, multimedia, mobile coordination,
// and the air-defence control system of reference [11]). Each generator
// produces an execution together with the labeled nonatomic events an
// application-level monitor would care about.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/execution.hpp"
#include "nonatomic/interval.hpp"

namespace syncon {

/// An execution plus its application-level nonatomic events. The execution
/// is heap-held so the intervals' back-references stay valid across moves.
class Scenario {
 public:
  Scenario(std::string name, std::shared_ptr<const Execution> exec,
           std::vector<NonatomicEvent> intervals);

  const std::string& name() const { return name_; }
  const Execution& execution() const { return *exec_; }
  std::shared_ptr<const Execution> execution_ptr() const { return exec_; }
  const std::vector<NonatomicEvent>& intervals() const { return intervals_; }

  /// First interval whose label equals `label` (contract: it exists).
  const NonatomicEvent& interval(const std::string& label) const;

 private:
  std::string name_;
  std::shared_ptr<const Execution> exec_;
  std::vector<NonatomicEvent> intervals_;
};

/// Air-defence control (use case of [11]): radars detect, a track processor
/// fuses, a command post authorizes, batteries engage. Per round k the
/// intervals are detect/k, track/k, decide/k, engage/k.
struct AirDefenseConfig {
  std::size_t radars = 3;
  std::size_t batteries = 2;
  std::size_t rounds = 4;
  std::size_t detections_per_radar = 3;  // local burst size cap
  std::uint64_t seed = 42;
};
Scenario make_air_defense(const AirDefenseConfig& cfg = {});

/// Industrial process control: sensors sample, a controller computes, the
/// actuators apply; actuators feed status back into the next cycle.
/// Intervals per cycle k: sample/k, compute/k, actuate/k.
struct ProcessControlConfig {
  std::size_t sensors = 4;
  std::size_t actuators = 2;
  std::size_t cycles = 5;
  std::uint64_t seed = 7;
};
Scenario make_process_control(const ProcessControlConfig& cfg = {});

/// Distributed multimedia: a server multicasts frame groups; clients decode
/// and render, returning sync feedback every few groups. Intervals per group
/// k: dispatch/k (server), render/k (all clients).
struct MultimediaConfig {
  std::size_t clients = 3;
  std::size_t groups = 6;
  std::size_t frames_per_group = 3;
  std::size_t feedback_period = 2;  // groups between client feedback
  std::uint64_t seed = 11;
};
Scenario make_multimedia(const MultimediaConfig& cfg = {});

/// Convoy navigation (the introduction's terrestrial/undersea/aerial
/// navigation motif): vehicles take position fixes and report to the
/// current leader, which computes and broadcasts the next waypoint; the
/// leader role rotates every `handoff_period` rounds. Intervals per round
/// k: fix/k (all vehicles), waypoint/k (leader), maneuver/k (all vehicles).
struct NavigationConfig {
  std::size_t vehicles = 4;
  std::size_t rounds = 5;
  std::size_t handoff_period = 2;
  std::uint64_t seed = 17;
};
Scenario make_navigation(const NavigationConfig& cfg = {});

/// A replica of the paper's Figure 2/3 setting: a four-node execution whose
/// eight-event poset "X" is chained by messages 0→1→2→3, making the four
/// cuts C1(X)..C4(X) (and the proxy cuts of Figure 3) pairwise distinct.
/// The scenario carries intervals "X", "L(X)" and "U(X)".
Scenario make_figure2();

/// Mobile coordination: hosts attached to base stations exchange bursts;
/// each host periodically hands off to the next station (deregister +
/// register + forwarding). Intervals: session/k per communication burst and
/// handoff/h/k per handoff (spanning host, old and new station).
struct MobileConfig {
  std::size_t hosts = 2;
  std::size_t stations = 3;
  std::size_t rounds = 4;
  std::uint64_t seed = 23;
};
Scenario make_mobile(const MobileConfig& cfg = {});

}  // namespace syncon
