// The air-defence control application ([11]) rebuilt on the discrete-event
// engine: radars scan on timers, the track processor fuses reports, the
// command post decides, batteries engage — all under simulated processing
// delays and network latencies, so the trace carries a REAL timeline
// (unlike the structural make_air_defense + post-hoc assign_times path).
//
// Interval labels per round k: detect/k, track/k, decide/k, engage/k —
// identical to make_air_defense, so the same analyses run on both.
#pragma once

#include "sim/des.hpp"

namespace syncon {

struct AirDefenseDesConfig {
  std::size_t radars = 3;
  std::size_t batteries = 2;
  std::size_t rounds = 4;
  /// Radar scan period (µs) — each radar detects once per period.
  Duration scan_period = 5000;
  /// Processing budgets (µs).
  Duration detect_work = 300;
  Duration fusion_work = 800;
  Duration decide_work = 1200;
  Duration engage_work = 600;
  /// Network parameters (latency window, loss, seed).
  DesConfig network{};
};

/// Runs the simulation to completion and returns the trace, timeline and
/// labeled intervals. With message loss enabled, rounds whose reports are
/// lost stall at the fusion barrier (fewer rounds complete) — the returned
/// trace shows exactly what happened.
DesEngine::Result make_air_defense_des(const AirDefenseDesConfig& cfg = {});

}  // namespace syncon
