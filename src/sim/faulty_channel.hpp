// Deterministic, seeded fault injection for message channels (DESIGN.md
// §3.7): every way a real network can betray the protocol layer — drop,
// duplicate, reorder, delay — plus scheduled process crash-and-restart
// windows, all reproducible from a single 64-bit seed. The fault schedule
// of a link depends only on (seed, from, to) and the order of pushes on
// that link, so a scenario replayed with the same seed injects exactly the
// same faults, which is what lets tests assert "faulty run + recovery ≡
// fault-free run" bit-for-bit.
//
// The channel carries WireMessages (clock-stamped event records), so the
// same machinery stresses both the application path (OnlineSystem::deliver)
// and the monitoring path (OnlineMonitor::ingest of event reports).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "online/online_system.hpp"
#include "support/rng.hpp"
#include "timing/physical_time.hpp"

namespace syncon {

/// Fault rates and delay window of one directed link.
struct LinkFaultConfig {
  /// Probability a pushed message vanishes in transit.
  double drop_probability = 0.0;
  /// Probability a pushed message is delivered twice (independent delays).
  double duplicate_probability = 0.0;
  /// Probability a scheduled arrival swaps delivery times with the most
  /// recently scheduled pending arrival (forcing an inversion when their
  /// delays differ).
  double reorder_probability = 0.0;
  /// Transit delay window (µs), sampled uniformly per copy.
  Duration min_delay = 1;
  Duration max_delay = 1;
};

/// One crash window: `process` is down in [crash_at, restart_at). While
/// down it neither sends nor receives; messages addressed to it in the
/// window are lost. Use kNeverRestarts for a permanent crash.
struct CrashWindow {
  ProcessId process = 0;
  TimePoint crash_at = 0;
  TimePoint restart_at = 0;
};

/// Sentinel restart time for a process that never comes back.
inline constexpr TimePoint kNeverRestarts =
    std::numeric_limits<TimePoint>::max();

/// Full deterministic fault schedule for a system: link faults (one default
/// config, overridable per link) + crash windows + the master seed.
struct FaultPlan {
  LinkFaultConfig link;
  std::vector<CrashWindow> crashes;
  std::uint64_t seed = 1;

  /// True iff p is inside some crash window at time t.
  bool crashed_at(ProcessId p, TimePoint t) const;
  /// Earliest crash_at of p's windows, or kNeverRestarts if p never crashes.
  TimePoint first_crash(ProcessId p) const;
};

/// One copy of a message in transit (or delivered).
struct Arrival {
  TimePoint at = 0;
  WireMessage message;
  /// True for the extra copy a duplication fault created.
  bool duplicate_copy = false;
};

/// What the channel did to the traffic so far.
struct ChannelStats {
  std::uint64_t offered = 0;     ///< messages pushed
  std::uint64_t dropped = 0;     ///< vanished in transit
  std::uint64_t duplicated = 0;  ///< extra copies injected
  std::uint64_t reordered = 0;   ///< delivery-time swaps performed
  std::uint64_t delivered = 0;   ///< arrivals handed out by pop_ready/drain

  ChannelStats& operator+=(const ChannelStats& o);
  bool operator==(const ChannelStats&) const = default;
};

/// One directed lossy link. Push messages with their send time; pop the
/// arrivals whose (faulted) delivery time has come, in delivery order.
class FaultyChannel {
 public:
  FaultyChannel(const LinkFaultConfig& config, std::uint64_t seed);

  /// Ships one message at `sent_at`, applying drop / duplicate / reorder /
  /// delay faults. Lost messages leave no trace but the stats.
  void push(const WireMessage& message, TimePoint sent_at);

  /// Removes and returns every arrival with at <= now, ordered by delivery
  /// time (ties: scheduling order).
  std::vector<Arrival> pop_ready(TimePoint now);

  /// Removes and returns everything still in transit, in delivery order.
  std::vector<Arrival> drain();

  std::size_t in_transit() const { return pending_.size(); }
  const ChannelStats& stats() const { return stats_; }

 private:
  struct Pending {
    Arrival arrival;
    std::uint64_t seq = 0;  // scheduling order, tiebreak + reorder target
  };

  Duration sample_delay();
  void schedule(const WireMessage& message, TimePoint at, bool duplicate);
  std::vector<Arrival> take_if(TimePoint cutoff);

  LinkFaultConfig config_;
  Xoshiro256StarStar rng_;
  std::vector<Pending> pending_;
  ChannelStats stats_;
  std::uint64_t next_seq_ = 0;
};

/// All directed links of a system under one FaultPlan. Links are created
/// lazily; each link's RNG stream is derived from (plan.seed, from, to), so
/// the fault schedule of a link is independent of traffic elsewhere.
class FaultyNetwork {
 public:
  FaultyNetwork(std::size_t process_count, const FaultPlan& plan);

  /// Overrides the fault config of one directed link (before or after its
  /// first use; pending traffic keeps its already-sampled fate).
  void configure_link(ProcessId from, ProcessId to,
                      const LinkFaultConfig& config);

  /// Ships from → to at `sent_at`. A message sent by a crashed process, or
  /// pushed to a process whose crash window covers the send, is dropped at
  /// the sender (counted in the link's stats).
  void push(ProcessId from, ProcessId to, const WireMessage& message,
            TimePoint sent_at);

  /// Arrivals at `to` due by `now`, across all inbound links, in delivery
  /// order. Arrivals landing inside one of to's crash windows are lost.
  std::vector<Arrival> pop_ready(ProcessId to, TimePoint now);

  /// Everything still in transit to `to` (crash windows still apply).
  std::vector<Arrival> drain(ProcessId to);

  std::size_t process_count() const { return process_count_; }
  const FaultPlan& plan() const { return plan_; }
  /// Aggregate stats across all links.
  ChannelStats stats() const;

  /// Mirrors the per-link fault counters into MetricRegistry::global() as
  /// labeled gauges (syncon_link_dropped{from="0",to="1"}, ...) plus the
  /// aggregate syncon_network_* family — exporters then show exactly what
  /// stats() reports.
  void publish_metrics() const;

 private:
  FaultyChannel& link(ProcessId from, ProcessId to);
  std::vector<Arrival> filter_crashed(ProcessId to, std::vector<Arrival> in);

  std::size_t process_count_;
  FaultPlan plan_;
  std::map<std::pair<ProcessId, ProcessId>, FaultyChannel> links_;
  std::map<std::pair<ProcessId, ProcessId>, LinkFaultConfig> overrides_;
  ChannelStats crash_losses_;  // arrivals eaten by receiver crash windows
};

}  // namespace syncon
