#include "sim/des.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/contracts.hpp"

namespace syncon {

namespace {

// Simulated-event throughput, incremented wherever Impl bumps `executed`.
obs::Counter& des_events_counter() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("syncon_des_events_total");
  return c;
}

}  // namespace

void publish_des_fault_metrics(const DesFaultStats& stats) {
  auto& registry = obs::MetricRegistry::global();
  registry.gauge("syncon_des_lost_messages")
      .set(static_cast<std::int64_t>(stats.lost));
  registry.gauge("syncon_des_duplicates_scheduled")
      .set(static_cast<std::int64_t>(stats.duplicates_scheduled));
  registry.gauge("syncon_des_duplicates_suppressed")
      .set(static_cast<std::int64_t>(stats.duplicates_suppressed));
  registry.gauge("syncon_des_reordered_messages")
      .set(static_cast<std::int64_t>(stats.reordered));
  registry.gauge("syncon_des_crash_discarded")
      .set(static_cast<std::int64_t>(stats.crash_discarded));
}

struct DesEngine::Impl {
  enum class Kind { Start, Delivery, Timer };

  struct Activation {
    TimePoint time = 0;
    std::uint64_t seq = 0;  // FIFO tiebreak for equal times
    Kind kind = Kind::Start;
    ProcessId process = 0;
    DesMessage message{};          // Delivery
    std::uint64_t delivery_id = 0; // Delivery: index into tokens
    std::uint64_t timer_id = 0;    // Timer
  };

  struct Later {
    bool operator()(const Activation& a, const Activation& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  explicit Impl(std::vector<std::unique_ptr<DesProcess>> procs,
                const DesConfig& cfg)
      : processes(std::move(procs)),
        config(cfg),
        builder(processes.size()),
        rng(cfg.seed) {
    SYNCON_REQUIRE(!processes.empty(), "simulation needs processes");
    SYNCON_REQUIRE(cfg.min_latency >= 1 && cfg.min_latency <= cfg.max_latency,
                   "latency window must be ordered and >= 1µs");
    SYNCON_REQUIRE(cfg.loss_probability >= 0.0 && cfg.loss_probability < 1.0,
                   "loss probability must be in [0, 1)");
    SYNCON_REQUIRE(cfg.duplicate_probability >= 0.0 &&
                       cfg.duplicate_probability <= 1.0,
                   "duplicate probability must be in [0, 1]");
    SYNCON_REQUIRE(cfg.reorder_probability >= 0.0 &&
                       cfg.reorder_probability <= 1.0,
                   "reorder probability must be in [0, 1]");
    for (const CrashWindow& w : cfg.crashes) {
      SYNCON_REQUIRE(w.process < processes.size(),
                     "crash window names an unknown process");
      SYNCON_REQUIRE(w.crash_at < w.restart_at,
                     "crash window must be non-empty (crash_at < restart_at)");
    }
    local_time.assign(processes.size(), 0);
    event_times.resize(processes.size());
    for (ProcessId p = 0; p < processes.size(); ++p) {
      push(Activation{0, next_seq++, Kind::Start, p, {}, 0, 0});
    }
  }

  void push(Activation a) { queue.push(std::move(a)); }

  // Advances p's local clock by at least 1µs of processing and returns the
  // new time (the time of the event being recorded).
  TimePoint advance(ProcessId p, Duration processing) {
    local_time[p] += std::max<Duration>(processing, 1);
    return local_time[p];
  }

  void record_time(ProcessId p, TimePoint t) {
    event_times[p].push_back(t);
  }

  bool crashed_at(ProcessId p, TimePoint t) const {
    for (const CrashWindow& w : config.crashes) {
      if (w.process == p && t >= w.crash_at && t < w.restart_at) return true;
    }
    return false;
  }

  void run_one(const Activation& act) {
    const ProcessId p = act.process;
    // A crashed process is deaf: deliveries and timers landing inside its
    // crash window are discarded, so it executes nothing until something
    // reaches it after restart.
    if (act.kind != Kind::Start && crashed_at(p, act.time)) {
      ++fault_stats.crash_discarded;
      return;
    }
    DesContext ctx(*self, p);
    // The process cannot act before the activation reaches it.
    local_time[p] = std::max(local_time[p], act.time);
    switch (act.kind) {
      case Kind::Start:
        processes[p]->on_start(ctx);
        break;
      case Kind::Delivery: {
        // At-least-once transport: the protocol layer consumes each
        // (receiver, message) pair exactly once.
        if (!seen_deliveries.insert({p, act.delivery_id}).second) {
          ++fault_stats.duplicates_suppressed;
          return;
        }
        const MessageToken token = tokens[act.delivery_id];
        const TimePoint t = advance(p, 1);
        current_receive = builder.receive(p, token);
        record_time(p, t);
        ++executed;
        if (obs::enabled()) des_events_counter().add();
        processes[p]->on_message(ctx, act.message);
        current_receive = EventId{};
        break;
      }
      case Kind::Timer:
        processes[p]->on_timer(ctx, act.timer_id);
        break;
    }
  }

  std::vector<std::unique_ptr<DesProcess>> processes;
  DesConfig config;
  ExecutionBuilder builder;
  Xoshiro256StarStar rng;
  std::priority_queue<Activation, std::vector<Activation>, Later> queue;
  std::vector<TimePoint> local_time;
  std::vector<std::vector<TimePoint>> event_times;
  std::vector<MessageToken> tokens;
  std::map<std::string, std::vector<EventId>> marks;
  std::set<std::pair<ProcessId, std::uint64_t>> seen_deliveries;
  DesFaultStats fault_stats;
  std::uint64_t next_seq = 0;
  std::size_t executed = 0;
  EventId current_receive{};
  bool finished = false;
  DesEngine* self = nullptr;
};

DesEngine::DesEngine(std::vector<std::unique_ptr<DesProcess>> processes,
                     const DesConfig& config)
    : impl_(std::make_unique<Impl>(std::move(processes), config)) {
  impl_->self = this;
}

DesEngine::~DesEngine() = default;

void DesEngine::run(TimePoint until) {
  SYNCON_SPAN("des/run");
  SYNCON_REQUIRE(!impl_->finished, "engine already finished");
  while (!impl_->queue.empty() && impl_->queue.top().time <= until) {
    const Impl::Activation act = impl_->queue.top();
    impl_->queue.pop();
    impl_->run_one(act);
  }
}

std::size_t DesEngine::events_executed() const { return impl_->executed; }

const DesFaultStats& DesEngine::fault_stats() const {
  return impl_->fault_stats;
}

void DesEngine::publish_metrics() const {
  publish_des_fault_metrics(impl_->fault_stats);
  obs::MetricRegistry::global()
      .gauge("syncon_des_events_executed")
      .set(static_cast<std::int64_t>(impl_->executed));
}

DesEngine::Result DesEngine::finish() {
  SYNCON_REQUIRE(!impl_->finished, "finish() called twice");
  impl_->finished = true;
  Result result;
  auto exec = std::make_shared<Execution>(impl_->builder.build());
  result.times = std::make_shared<const PhysicalTimes>(
      *exec, std::move(impl_->event_times));
  for (auto& [label, events] : impl_->marks) {
    result.intervals.emplace_back(*exec, std::move(events), label);
  }
  result.execution = std::move(exec);
  return result;
}

TimePoint DesContext::now() const { return engine_->impl_->local_time[process_]; }

EventId DesContext::execute(Duration processing) {
  DesEngine::Impl& impl = *engine_->impl_;
  const TimePoint t = impl.advance(process_, processing);
  const EventId e = impl.builder.local(process_);
  impl.record_time(process_, t);
  ++impl.executed;
  if (obs::enabled()) des_events_counter().add();
  return e;
}

EventId DesContext::send(ProcessId to, std::uint64_t tag, std::int64_t value,
                         Duration processing) {
  const ProcessId dests[] = {to};
  return multicast(dests, tag, value, processing);
}

EventId DesContext::multicast(std::span<const ProcessId> to,
                              std::uint64_t tag, std::int64_t value,
                              Duration processing) {
  DesEngine::Impl& impl = *engine_->impl_;
  SYNCON_REQUIRE(!to.empty(), "multicast needs at least one destination");
  for (const ProcessId dest : to) {
    SYNCON_REQUIRE(dest < impl.processes.size(),
                   "destination out of range");
    SYNCON_REQUIRE(dest != process_, "a process cannot message itself");
  }
  const TimePoint t = impl.advance(process_, processing);
  EventId send_event;
  const MessageToken token = impl.builder.send(process_, &send_event);
  impl.record_time(process_, t);
  ++impl.executed;
  if (obs::enabled()) des_events_counter().add();
  impl.tokens.push_back(token);
  const std::uint64_t token_id = impl.tokens.size() - 1;
  for (const ProcessId dest : to) {
    if (impl.rng.bernoulli(impl.config.loss_probability)) {
      ++impl.fault_stats.lost;
      continue;  // lost in transit for this destination
    }
    const auto sample_latency = [&impl]() {
      Duration latency =
          impl.config.min_latency +
          static_cast<Duration>(impl.rng.uniform(
              0, static_cast<std::uint64_t>(impl.config.max_latency -
                                            impl.config.min_latency)));
      if (impl.rng.bernoulli(impl.config.reorder_probability)) {
        // Stale route: an extra delay lets later sends overtake this copy.
        latency += static_cast<Duration>(impl.rng.uniform(
            0, static_cast<std::uint64_t>(impl.config.max_latency)));
        ++impl.fault_stats.reordered;
      }
      return latency;
    };
    impl.push(DesEngine::Impl::Activation{
        t + sample_latency(), impl.next_seq++,
        DesEngine::Impl::Kind::Delivery, dest,
        DesMessage{process_, tag, value}, token_id, 0});
    if (impl.rng.bernoulli(impl.config.duplicate_probability)) {
      ++impl.fault_stats.duplicates_scheduled;
      impl.push(DesEngine::Impl::Activation{
          t + sample_latency(), impl.next_seq++,
          DesEngine::Impl::Kind::Delivery, dest,
          DesMessage{process_, tag, value}, token_id, 0});
    }
  }
  return send_event;
}

void DesContext::set_timer(Duration delay, std::uint64_t timer_id) {
  DesEngine::Impl& impl = *engine_->impl_;
  SYNCON_REQUIRE(delay >= 1, "timer delay must be at least 1µs");
  impl.push(DesEngine::Impl::Activation{
      impl.local_time[process_] + delay, impl.next_seq++,
      DesEngine::Impl::Kind::Timer, process_, {}, 0, timer_id});
}

EventId DesContext::current_receive() const {
  const EventId e = engine_->impl_->current_receive;
  SYNCON_REQUIRE(e.index != 0, "no message is being handled");
  return e;
}

void DesContext::mark(const std::string& interval_label, EventId e) {
  SYNCON_REQUIRE(!interval_label.empty(), "interval label must be non-empty");
  engine_->impl_->marks[interval_label].push_back(e);
}

}  // namespace syncon
