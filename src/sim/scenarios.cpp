#include "sim/scenarios.hpp"

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace syncon {

Scenario::Scenario(std::string name, std::shared_ptr<const Execution> exec,
                   std::vector<NonatomicEvent> intervals)
    : name_(std::move(name)),
      exec_(std::move(exec)),
      intervals_(std::move(intervals)) {}

const NonatomicEvent& Scenario::interval(const std::string& label) const {
  for (const NonatomicEvent& iv : intervals_) {
    if (iv.label() == label) return iv;
  }
  SYNCON_REQUIRE(false, "no interval labeled '" + label + "'");
  return intervals_.front();  // unreachable
}

Scenario make_air_defense(const AirDefenseConfig& cfg) {
  SYNCON_REQUIRE(cfg.radars >= 1 && cfg.batteries >= 1 && cfg.rounds >= 1,
                 "air defence needs radars, batteries and rounds");
  const std::size_t p_count = cfg.radars + 2 + cfg.batteries;
  const ProcessId fusion = static_cast<ProcessId>(cfg.radars);
  const ProcessId command = static_cast<ProcessId>(cfg.radars + 1);
  const auto battery0 = static_cast<ProcessId>(cfg.radars + 2);

  ExecutionBuilder b(p_count);
  Xoshiro256StarStar rng(cfg.seed);

  struct Pending {
    std::string label;
    std::vector<EventId> events;
  };
  std::vector<Pending> intervals;

  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    const std::string suffix = "/" + std::to_string(round);
    // 1. Radars detect: a burst of detection events, then a track report.
    std::vector<MessageToken> reports;
    Pending detect{"detect" + suffix, {}};
    for (ProcessId r = 0; r < cfg.radars; ++r) {
      const std::uint64_t burst =
          rng.burst(0.5, std::max<std::size_t>(cfg.detections_per_radar, 1));
      for (std::uint64_t k = 0; k < burst; ++k) {
        detect.events.push_back(b.local(r));
      }
      EventId report_event;
      reports.push_back(b.send(r, &report_event));
      detect.events.push_back(report_event);
    }
    intervals.push_back(std::move(detect));

    // 2. Track fusion: gather all reports, correlate, brief command.
    Pending track{"track" + suffix, {}};
    track.events.push_back(b.receive_all(fusion, reports));
    track.events.push_back(b.local(fusion));  // correlation
    EventId brief_event;
    const MessageToken brief = b.send(fusion, &brief_event);
    track.events.push_back(brief_event);
    intervals.push_back(std::move(track));

    // 3. Command decides and issues engage orders to every battery.
    Pending decide{"decide" + suffix, {}};
    decide.events.push_back(b.receive(command, brief));
    decide.events.push_back(b.local(command));  // threat evaluation
    EventId order_event;
    const MessageToken order = b.send(command, &order_event);
    decide.events.push_back(order_event);
    intervals.push_back(std::move(decide));

    // 4. Batteries engage: accept order, launch, report kill assessment to
    //    command (consumed next round by the command post's local work).
    Pending engage{"engage" + suffix, {}};
    std::vector<MessageToken> assessments;
    for (std::size_t i = 0; i < cfg.batteries; ++i) {
      const auto bat = static_cast<ProcessId>(battery0 + i);
      engage.events.push_back(b.receive(bat, order));
      engage.events.push_back(b.local(bat));  // launch
      EventId assess_event;
      assessments.push_back(b.send(bat, &assess_event));
      engage.events.push_back(assess_event);
    }
    intervals.push_back(std::move(engage));
    b.receive_all(command, assessments);  // battle damage assessment
  }

  auto exec = std::make_shared<const Execution>(b.build());
  std::vector<NonatomicEvent> events;
  events.reserve(intervals.size());
  for (Pending& p : intervals) {
    events.emplace_back(*exec, std::move(p.events), std::move(p.label));
  }
  return Scenario("air-defense", std::move(exec), std::move(events));
}

Scenario make_process_control(const ProcessControlConfig& cfg) {
  SYNCON_REQUIRE(cfg.sensors >= 1 && cfg.actuators >= 1 && cfg.cycles >= 1,
                 "process control needs sensors, actuators and cycles");
  const std::size_t p_count = cfg.sensors + 1 + cfg.actuators;
  const ProcessId controller = static_cast<ProcessId>(cfg.sensors);
  const auto actuator0 = static_cast<ProcessId>(cfg.sensors + 1);

  ExecutionBuilder b(p_count);
  Xoshiro256StarStar rng(cfg.seed);

  struct Pending {
    std::string label;
    std::vector<EventId> events;
  };
  std::vector<Pending> intervals;
  std::vector<MessageToken> feedback;  // actuator status from previous cycle

  for (std::size_t cycle = 0; cycle < cfg.cycles; ++cycle) {
    const std::string suffix = "/" + std::to_string(cycle);
    // Sensors sample (some take several readings) and transmit.
    Pending sample{"sample" + suffix, {}};
    std::vector<MessageToken> readings;
    for (ProcessId s = 0; s < cfg.sensors; ++s) {
      const std::uint64_t n = rng.burst(0.4, 3);
      for (std::uint64_t k = 0; k < n; ++k) sample.events.push_back(b.local(s));
      EventId tx;
      readings.push_back(b.send(s, &tx));
      sample.events.push_back(tx);
    }
    intervals.push_back(std::move(sample));

    // Controller folds in last cycle's actuator feedback, then computes.
    Pending compute{"compute" + suffix, {}};
    for (const MessageToken& f : feedback) {
      compute.events.push_back(b.receive(controller, f));
    }
    feedback.clear();
    compute.events.push_back(b.receive_all(controller, readings));
    compute.events.push_back(b.local(controller));  // control law
    EventId cmd_event;
    const MessageToken command = b.send(controller, &cmd_event);
    compute.events.push_back(cmd_event);
    intervals.push_back(std::move(compute));

    // Actuators apply the setpoint and emit status.
    Pending actuate{"actuate" + suffix, {}};
    for (std::size_t i = 0; i < cfg.actuators; ++i) {
      const auto a = static_cast<ProcessId>(actuator0 + i);
      actuate.events.push_back(b.receive(a, command));
      actuate.events.push_back(b.local(a));  // physical adjustment
      EventId status;
      feedback.push_back(b.send(a, &status));
      actuate.events.push_back(status);
    }
    intervals.push_back(std::move(actuate));
  }
  // Close the loop so the trailing feedback is consumed.
  for (const MessageToken& f : feedback) b.receive(controller, f);

  auto exec = std::make_shared<const Execution>(b.build());
  std::vector<NonatomicEvent> events;
  events.reserve(intervals.size());
  for (Pending& p : intervals) {
    events.emplace_back(*exec, std::move(p.events), std::move(p.label));
  }
  return Scenario("process-control", std::move(exec), std::move(events));
}

Scenario make_multimedia(const MultimediaConfig& cfg) {
  SYNCON_REQUIRE(cfg.clients >= 1 && cfg.groups >= 1,
                 "multimedia needs clients and frame groups");
  const std::size_t p_count = 1 + cfg.clients;
  const ProcessId server = 0;

  ExecutionBuilder b(p_count);
  Xoshiro256StarStar rng(cfg.seed);

  struct Pending {
    std::string label;
    std::vector<EventId> events;
  };
  std::vector<Pending> intervals;
  std::vector<MessageToken> pending_feedback;

  for (std::size_t g = 0; g < cfg.groups; ++g) {
    const std::string suffix = "/" + std::to_string(g);
    // Server encodes and multicasts the frame group.
    Pending dispatch{"dispatch" + suffix, {}};
    for (const MessageToken& f : pending_feedback) {
      dispatch.events.push_back(b.receive(server, f));  // rate adaptation
    }
    pending_feedback.clear();
    for (std::size_t k = 0; k + 1 < cfg.frames_per_group; ++k) {
      dispatch.events.push_back(b.local(server));  // encode
    }
    EventId mcast_event;
    const MessageToken mcast = b.send(server, &mcast_event);
    dispatch.events.push_back(mcast_event);
    intervals.push_back(std::move(dispatch));

    // Clients decode and render; some jitter in local work.
    Pending render{"render" + suffix, {}};
    for (std::size_t c = 0; c < cfg.clients; ++c) {
      const auto client = static_cast<ProcessId>(1 + c);
      render.events.push_back(b.receive(client, mcast));
      const std::uint64_t jitter = rng.burst(0.3, 2);
      for (std::uint64_t k = 0; k < jitter; ++k) {
        render.events.push_back(b.local(client));  // decode + present
      }
      if (cfg.feedback_period != 0 && g % cfg.feedback_period == 0) {
        EventId fb;
        pending_feedback.push_back(b.send(client, &fb));
        render.events.push_back(fb);
      }
    }
    intervals.push_back(std::move(render));
  }
  for (const MessageToken& f : pending_feedback) b.receive(server, f);

  auto exec = std::make_shared<const Execution>(b.build());
  std::vector<NonatomicEvent> events;
  events.reserve(intervals.size());
  for (Pending& p : intervals) {
    events.emplace_back(*exec, std::move(p.events), std::move(p.label));
  }
  return Scenario("multimedia", std::move(exec), std::move(events));
}

Scenario make_navigation(const NavigationConfig& cfg) {
  SYNCON_REQUIRE(cfg.vehicles >= 2 && cfg.rounds >= 1,
                 "a convoy needs at least two vehicles and one round");
  ExecutionBuilder b(cfg.vehicles);
  Xoshiro256StarStar rng(cfg.seed);

  struct Pending {
    std::string label;
    std::vector<EventId> events;
  };
  std::vector<Pending> intervals;
  std::size_t leader = 0;

  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    const std::string suffix = "/" + std::to_string(round);
    const auto lead = static_cast<ProcessId>(leader);

    // 1. Every vehicle takes position fixes and reports to the leader.
    Pending fix{"fix" + suffix, {}};
    std::vector<MessageToken> reports;
    for (ProcessId v = 0; v < cfg.vehicles; ++v) {
      const std::uint64_t samples = rng.burst(0.4, 3);
      for (std::uint64_t k = 0; k < samples; ++k) {
        fix.events.push_back(b.local(v));  // GNSS / inertial fix
      }
      if (v != lead) {
        EventId tx;
        reports.push_back(b.send(v, &tx));
        fix.events.push_back(tx);
      }
    }
    intervals.push_back(std::move(fix));

    // 2. The leader fuses fixes and broadcasts the next waypoint.
    Pending waypoint{"waypoint" + suffix, {}};
    waypoint.events.push_back(b.receive_all(lead, reports));
    waypoint.events.push_back(b.local(lead));  // route planning
    EventId bcast_event;
    const MessageToken bcast = b.send(lead, &bcast_event);
    waypoint.events.push_back(bcast_event);
    intervals.push_back(std::move(waypoint));

    // 3. Vehicles maneuver onto the waypoint.
    Pending maneuver{"maneuver" + suffix, {}};
    for (ProcessId v = 0; v < cfg.vehicles; ++v) {
      if (v != lead) maneuver.events.push_back(b.receive(v, bcast));
      maneuver.events.push_back(b.local(v));  // course correction
    }
    intervals.push_back(std::move(maneuver));

    // Leader handoff: the outgoing leader transfers convoy state.
    if (cfg.handoff_period != 0 && (round + 1) % cfg.handoff_period == 0) {
      const std::size_t next = (leader + 1) % cfg.vehicles;
      const MessageToken state = b.send(lead);
      b.receive(static_cast<ProcessId>(next), state);
      leader = next;
    }
  }

  auto exec = std::make_shared<const Execution>(b.build());
  std::vector<NonatomicEvent> events;
  events.reserve(intervals.size());
  for (Pending& p : intervals) {
    events.emplace_back(*exec, std::move(p.events), std::move(p.label));
  }
  return Scenario("navigation", std::move(exec), std::move(events));
}

Scenario make_figure2() {
  ExecutionBuilder b(4);
  std::vector<EventId> xs;
  xs.push_back(b.local(0));           // x01 = 0.1
  xs.push_back(b.local(0));           // x02 = 0.2
  const MessageToken s0 = b.send(0);  // 0.3
  b.receive(1, s0);                   // 1.1
  xs.push_back(b.local(1));           // x11 = 1.2
  xs.push_back(b.local(1));           // x12 = 1.3
  const MessageToken s1 = b.send(1);  // 1.4
  b.receive(2, s1);                   // 2.1
  xs.push_back(b.local(2));           // x21 = 2.2
  xs.push_back(b.local(2));           // x22 = 2.3
  const MessageToken s2 = b.send(2);  // 2.4
  b.receive(3, s2);                   // 3.1
  xs.push_back(b.local(3));           // x31 = 3.2
  xs.push_back(b.local(3));           // x32 = 3.3
  b.local(0);                         // tail events outside X
  b.local(1);
  b.local(3);
  auto exec = std::make_shared<const Execution>(b.build());
  NonatomicEvent x(*exec, xs, "X");
  std::vector<NonatomicEvent> intervals;
  intervals.push_back(x.proxy_per_node(ProxyKind::Begin));  // "L(X)"
  intervals.push_back(x.proxy_per_node(ProxyKind::End));    // "U(X)"
  intervals.insert(intervals.begin(), std::move(x));
  return Scenario("figure2", std::move(exec), std::move(intervals));
}

Scenario make_mobile(const MobileConfig& cfg) {
  SYNCON_REQUIRE(cfg.hosts >= 1 && cfg.stations >= 2 && cfg.rounds >= 1,
                 "mobile coordination needs hosts and at least two stations");
  // Processes: hosts first, then stations.
  const std::size_t p_count = cfg.hosts + cfg.stations;
  auto station_pid = [&](std::size_t s) {
    return static_cast<ProcessId>(cfg.hosts + s);
  };

  ExecutionBuilder b(p_count);
  Xoshiro256StarStar rng(cfg.seed);

  struct Pending {
    std::string label;
    std::vector<EventId> events;
  };
  std::vector<Pending> intervals;
  // Hosts start spread across the stations so concurrent sessions exist.
  std::vector<std::size_t> attached(cfg.hosts);
  for (std::size_t h = 0; h < cfg.hosts; ++h) attached[h] = h % cfg.stations;

  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    // All sessions of the round first: sessions of hosts on different
    // stations stay mutually concurrent.
    for (std::size_t h = 0; h < cfg.hosts; ++h) {
      const auto host = static_cast<ProcessId>(h);
      const std::string tag =
          "/" + std::to_string(h) + "/" + std::to_string(round);

      // Communication burst through the current station.
      Pending session{"session" + tag, {}};
      const ProcessId st = station_pid(attached[h]);
      EventId up_event;
      const MessageToken up = b.send(host, &up_event);
      session.events.push_back(up_event);
      session.events.push_back(b.receive(st, up));
      session.events.push_back(b.local(st));  // relay bookkeeping
      EventId down_event;
      const MessageToken down = b.send(st, &down_event);
      session.events.push_back(down_event);
      session.events.push_back(b.receive(host, down));
      const std::uint64_t work = rng.burst(0.4, 3);
      for (std::uint64_t k = 0; k < work; ++k) {
        session.events.push_back(b.local(host));
      }
      intervals.push_back(std::move(session));
    }
    // Then the handoffs (skipped on the final round).
    for (std::size_t h = 0; h < cfg.hosts; ++h) {
      const auto host = static_cast<ProcessId>(h);
      const std::string tag =
          "/" + std::to_string(h) + "/" + std::to_string(round);
      if (round + 1 < cfg.rounds) {
        const std::size_t next = (attached[h] + 1) % cfg.stations;
        Pending handoff{"handoff" + tag, {}};
        const ProcessId old_st = station_pid(attached[h]);
        const ProcessId new_st = station_pid(next);
        EventId dereg_event;
        const MessageToken dereg = b.send(host, &dereg_event);
        handoff.events.push_back(dereg_event);
        handoff.events.push_back(b.receive(old_st, dereg));
        EventId fwd_event;
        const MessageToken fwd = b.send(old_st, &fwd_event);  // context
        handoff.events.push_back(fwd_event);
        handoff.events.push_back(b.receive(new_st, fwd));
        EventId ack_event;
        const MessageToken ack = b.send(new_st, &ack_event);
        handoff.events.push_back(ack_event);
        handoff.events.push_back(b.receive(host, ack));
        intervals.push_back(std::move(handoff));
        attached[h] = next;
      }
    }
  }

  auto exec = std::make_shared<const Execution>(b.build());
  std::vector<NonatomicEvent> events;
  events.reserve(intervals.size());
  for (Pending& p : intervals) {
    events.emplace_back(*exec, std::move(p.events), std::move(p.label));
  }
  return Scenario("mobile", std::move(exec), std::move(events));
}

}  // namespace syncon
