#include "sim/faulty_channel.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "support/contracts.hpp"

namespace syncon {

namespace {

void check_config(const LinkFaultConfig& c) {
  SYNCON_REQUIRE(c.drop_probability >= 0.0 && c.drop_probability < 1.0,
                 "drop probability must be in [0, 1)");
  SYNCON_REQUIRE(c.duplicate_probability >= 0.0 &&
                     c.duplicate_probability <= 1.0,
                 "duplicate probability must be in [0, 1]");
  SYNCON_REQUIRE(c.reorder_probability >= 0.0 && c.reorder_probability <= 1.0,
                 "reorder probability must be in [0, 1]");
  SYNCON_REQUIRE(c.min_delay >= 0 && c.min_delay <= c.max_delay,
                 "delay window must be ordered and non-negative");
}

/// Stable per-link seed: mixes (seed, from, to) through SplitMix64 so each
/// directed link gets an independent stream regardless of creation order.
std::uint64_t link_seed(std::uint64_t seed, ProcessId from, ProcessId to) {
  SplitMix64 mix(seed ^ (static_cast<std::uint64_t>(from) << 32) ^
                 (static_cast<std::uint64_t>(to) + 0x9e3779b97f4a7c15ULL));
  mix.next();
  return mix.next();
}

}  // namespace

bool FaultPlan::crashed_at(ProcessId p, TimePoint t) const {
  for (const CrashWindow& w : crashes) {
    if (w.process == p && t >= w.crash_at && t < w.restart_at) return true;
  }
  return false;
}

TimePoint FaultPlan::first_crash(ProcessId p) const {
  TimePoint first = kNeverRestarts;
  for (const CrashWindow& w : crashes) {
    if (w.process == p) first = std::min(first, w.crash_at);
  }
  return first;
}

ChannelStats& ChannelStats::operator+=(const ChannelStats& o) {
  offered += o.offered;
  dropped += o.dropped;
  duplicated += o.duplicated;
  reordered += o.reordered;
  delivered += o.delivered;
  return *this;
}

FaultyChannel::FaultyChannel(const LinkFaultConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  check_config(config);
}

Duration FaultyChannel::sample_delay() {
  return config_.min_delay +
         static_cast<Duration>(rng_.uniform(
             0, static_cast<std::uint64_t>(config_.max_delay -
                                           config_.min_delay)));
}

void FaultyChannel::schedule(const WireMessage& message, TimePoint at,
                             bool duplicate) {
  Pending p;
  p.arrival = Arrival{at, message, duplicate};
  p.seq = next_seq_++;
  if (!pending_.empty() && rng_.bernoulli(config_.reorder_probability)) {
    // Swap delivery times with the most recently scheduled copy still in
    // transit: the later message overtakes it.
    std::swap(p.arrival.at, pending_.back().arrival.at);
    ++stats_.reordered;
  }
  pending_.push_back(std::move(p));
}

void FaultyChannel::push(const WireMessage& message, TimePoint sent_at) {
  ++stats_.offered;
  if (rng_.bernoulli(config_.drop_probability)) {
    ++stats_.dropped;
    return;
  }
  schedule(message, sent_at + sample_delay(), false);
  if (rng_.bernoulli(config_.duplicate_probability)) {
    ++stats_.duplicated;
    schedule(message, sent_at + sample_delay(), true);
  }
}

std::vector<Arrival> FaultyChannel::take_if(TimePoint cutoff) {
  std::vector<Pending> due;
  std::vector<Pending> rest;
  for (Pending& p : pending_) {
    (p.arrival.at <= cutoff ? due : rest).push_back(std::move(p));
  }
  pending_ = std::move(rest);
  std::sort(due.begin(), due.end(), [](const Pending& a, const Pending& b) {
    if (a.arrival.at != b.arrival.at) return a.arrival.at < b.arrival.at;
    return a.seq < b.seq;
  });
  std::vector<Arrival> out;
  out.reserve(due.size());
  for (Pending& p : due) out.push_back(std::move(p.arrival));
  stats_.delivered += out.size();
  return out;
}

std::vector<Arrival> FaultyChannel::pop_ready(TimePoint now) {
  return take_if(now);
}

std::vector<Arrival> FaultyChannel::drain() {
  return take_if(std::numeric_limits<TimePoint>::max());
}

FaultyNetwork::FaultyNetwork(std::size_t process_count, const FaultPlan& plan)
    : process_count_(process_count), plan_(plan) {
  SYNCON_REQUIRE(process_count > 0, "network needs at least one process");
  check_config(plan.link);
  for (const CrashWindow& w : plan.crashes) {
    SYNCON_REQUIRE(w.process < process_count,
                   "crash window names an unknown process");
    SYNCON_REQUIRE(w.crash_at < w.restart_at,
                   "crash window must be non-empty (crash_at < restart_at)");
  }
}

void FaultyNetwork::configure_link(ProcessId from, ProcessId to,
                                   const LinkFaultConfig& config) {
  SYNCON_REQUIRE(from < process_count_ && to < process_count_,
                 "link endpoints out of range");
  check_config(config);
  overrides_[{from, to}] = config;
  const auto it = links_.find({from, to});
  if (it != links_.end()) {
    SYNCON_REQUIRE(it->second.in_transit() == 0,
                   "configure_link with traffic in flight is unsupported");
    it->second = FaultyChannel(config, link_seed(plan_.seed, from, to));
  }
}

FaultyChannel& FaultyNetwork::link(ProcessId from, ProcessId to) {
  const auto it = links_.find({from, to});
  if (it != links_.end()) return it->second;
  const auto ov = overrides_.find({from, to});
  const LinkFaultConfig& cfg = ov != overrides_.end() ? ov->second : plan_.link;
  return links_
      .emplace(std::make_pair(from, to),
               FaultyChannel(cfg, link_seed(plan_.seed, from, to)))
      .first->second;
}

void FaultyNetwork::push(ProcessId from, ProcessId to,
                         const WireMessage& message, TimePoint sent_at) {
  SYNCON_REQUIRE(from < process_count_ && to < process_count_,
                 "link endpoints out of range");
  SYNCON_REQUIRE(from != to, "a process does not message itself");
  if (plan_.crashed_at(from, sent_at)) {
    // A crashed sender produces nothing: the message never enters the
    // channel (and consumes none of its random stream).
    ++crash_losses_.offered;
    ++crash_losses_.dropped;
    return;
  }
  link(from, to).push(message, sent_at);
}

std::vector<Arrival> FaultyNetwork::filter_crashed(ProcessId to,
                                                   std::vector<Arrival> in) {
  std::vector<Arrival> out;
  out.reserve(in.size());
  for (Arrival& a : in) {
    if (plan_.crashed_at(to, a.at)) {
      ++crash_losses_.dropped;
      continue;
    }
    out.push_back(std::move(a));
  }
  return out;
}

std::vector<Arrival> FaultyNetwork::pop_ready(ProcessId to, TimePoint now) {
  SYNCON_REQUIRE(to < process_count_, "process id out of range");
  std::vector<Arrival> all;
  for (ProcessId from = 0; from < process_count_; ++from) {
    if (from == to) continue;
    const auto it = links_.find({from, to});
    if (it == links_.end()) continue;
    for (Arrival& a : it->second.pop_ready(now)) {
      all.push_back(std::move(a));
    }
  }
  // Stable: ties across links resolve by sender id, deterministically.
  std::stable_sort(all.begin(), all.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.at < b.at;
                   });
  return filter_crashed(to, std::move(all));
}

std::vector<Arrival> FaultyNetwork::drain(ProcessId to) {
  return pop_ready(to, std::numeric_limits<TimePoint>::max());
}

ChannelStats FaultyNetwork::stats() const {
  ChannelStats total = crash_losses_;
  for (const auto& [key, l] : links_) total += l.stats();
  return total;
}

void FaultyNetwork::publish_metrics() const {
  auto& registry = obs::MetricRegistry::global();
  const auto set = [&registry](const std::string& name, std::uint64_t v) {
    registry.gauge(name).set(static_cast<std::int64_t>(v));
  };
  for (const auto& [key, l] : links_) {
    const std::string labels = "{from=\"" + std::to_string(key.first) +
                               "\",to=\"" + std::to_string(key.second) +
                               "\"}";
    const ChannelStats& s = l.stats();
    set("syncon_link_offered" + labels, s.offered);
    set("syncon_link_dropped" + labels, s.dropped);
    set("syncon_link_duplicated" + labels, s.duplicated);
    set("syncon_link_reordered" + labels, s.reordered);
    set("syncon_link_delivered" + labels, s.delivered);
  }
  const ChannelStats total = stats();
  set("syncon_network_offered", total.offered);
  set("syncon_network_dropped", total.dropped);
  set("syncon_network_duplicated", total.duplicated);
  set("syncon_network_reordered", total.reordered);
  set("syncon_network_delivered", total.delivered);
}

}  // namespace syncon
