#include "sim/interval_picker.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace syncon {

NonatomicEvent random_interval(const Execution& exec, Xoshiro256StarStar& rng,
                               const IntervalSpec& spec, std::string label) {
  SYNCON_REQUIRE(spec.node_count >= 1, "an interval spans at least one node");
  SYNCON_REQUIRE(spec.max_events_per_node >= 1,
                 "an interval has at least one event per spanned node");
  std::vector<ProcessId> candidates;
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    if (exec.real_count(p) > 0) candidates.push_back(p);
  }
  SYNCON_REQUIRE(!candidates.empty(),
                 "execution has no real events to build an interval from");
  const std::size_t span = std::min(spec.node_count, candidates.size());

  std::vector<EventId> events;
  for (const std::size_t c :
       rng.sample_without_replacement(candidates.size(), span)) {
    const ProcessId p = candidates[c];
    const EventIndex n = exec.real_count(p);
    const auto run =
        static_cast<EventIndex>(1 + rng.below(spec.max_events_per_node));
    const EventIndex len = std::min<EventIndex>(run, n);
    const auto start =
        static_cast<EventIndex>(1 + rng.below(n - len + 1));  // 1-based
    for (EventIndex k = 0; k < len; ++k) {
      events.push_back(EventId{p, static_cast<EventIndex>(start + k)});
    }
  }
  return NonatomicEvent(exec, std::move(events), std::move(label));
}

std::vector<NonatomicEvent> random_intervals(const Execution& exec,
                                             Xoshiro256StarStar& rng,
                                             const IntervalSpec& spec,
                                             std::size_t count) {
  std::vector<NonatomicEvent> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(random_interval(exec, rng, spec, "I" + std::to_string(i)));
  }
  return out;
}

std::vector<NonatomicEvent> windowed_intervals(const Execution& exec,
                                               std::size_t width) {
  SYNCON_REQUIRE(width >= 1, "window width must be positive");
  EventIndex longest = 0;
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    longest = std::max(longest, exec.real_count(p));
  }
  std::vector<NonatomicEvent> out;
  for (std::size_t k = 0; k * width < longest; ++k) {
    std::vector<EventId> events;
    for (ProcessId p = 0; p < exec.process_count(); ++p) {
      const EventIndex n = exec.real_count(p);
      const auto lo = static_cast<EventIndex>(k * width + 1);
      const auto hi =
          std::min<EventIndex>(static_cast<EventIndex>((k + 1) * width), n);
      for (EventIndex i = lo; i <= hi && i >= lo; ++i) {
        events.push_back(EventId{p, i});
      }
    }
    if (!events.empty()) {
      out.emplace_back(exec, std::move(events), "W" + std::to_string(k));
    }
  }
  return out;
}

}  // namespace syncon
