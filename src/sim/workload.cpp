#include "sim/workload.hpp"

#include <deque>
#include <iterator>
#include <vector>

#include "support/contracts.hpp"

namespace syncon {

const char* to_string(Topology t) {
  switch (t) {
    case Topology::Random: return "random";
    case Topology::Ring: return "ring";
    case Topology::ClientServer: return "client-server";
    case Topology::Broadcast: return "broadcast";
    case Topology::Phases: return "phases";
  }
  return "?";
}

namespace {

// Round-robin point-to-point generator driving the Random, Ring,
// ClientServer and Broadcast topologies: each process alternates between
// draining its mailbox, doing local work, and sending.
Execution generate_point_to_point(const WorkloadConfig& cfg) {
  ExecutionBuilder builder(cfg.process_count);
  Xoshiro256StarStar rng(cfg.seed);
  std::vector<std::deque<MessageToken>> mailbox(cfg.process_count);

  auto destination = [&](ProcessId from) -> ProcessId {
    switch (cfg.topology) {
      case Topology::Ring:
        return static_cast<ProcessId>((from + 1) % cfg.process_count);
      case Topology::ClientServer:
        if (from == 0) {
          // Server replies to a random client.
          return static_cast<ProcessId>(
              1 + rng.below(cfg.process_count - 1));
        }
        return 0;
      default: {
        // Uniform among the other processes.
        auto d = static_cast<ProcessId>(rng.below(cfg.process_count - 1));
        return d >= from ? static_cast<ProcessId>(d + 1) : d;
      }
    }
  };

  const std::size_t total_target = cfg.process_count * cfg.events_per_process;
  std::size_t generated = 0;
  // Interleave processes randomly; stop once the target volume is reached.
  while (generated < total_target) {
    const auto p = static_cast<ProcessId>(rng.below(cfg.process_count));
    if (!mailbox[p].empty() && rng.bernoulli(cfg.receive_probability)) {
      builder.receive(p, mailbox[p].front());
      mailbox[p].pop_front();
      ++generated;
      continue;
    }
    if (rng.bernoulli(cfg.send_probability)) {
      if (cfg.topology == Topology::Broadcast && rng.bernoulli(0.25)) {
        // One-to-all multicast: a single send event, every peer receives it.
        const MessageToken token = builder.send(p);
        for (ProcessId q = 0; q < cfg.process_count; ++q) {
          if (q != p) mailbox[q].push_back(token);
        }
      } else {
        const ProcessId q = destination(p);
        mailbox[q].push_back(builder.send(p));
      }
    } else {
      builder.local(p);
    }
    ++generated;
  }
  // Drain mailboxes so heavy topologies end causally coupled (messages still
  // in flight are dropped — they model loss at the trace horizon).
  for (ProcessId p = 0; p < cfg.process_count; ++p) {
    while (!mailbox[p].empty() && rng.bernoulli(cfg.receive_probability)) {
      builder.receive(p, mailbox[p].front());
      mailbox[p].pop_front();
    }
  }
  return builder.build();
}

// Barrier-phase generator: each phase is local work on every process, a
// gather into the coordinator, and a release broadcast back out.
Execution generate_phases(const WorkloadConfig& cfg) {
  SYNCON_REQUIRE(cfg.process_count >= 2,
                 "phase workloads need a coordinator and a worker");
  ExecutionBuilder builder(cfg.process_count);
  Xoshiro256StarStar rng(cfg.seed);
  const ProcessId coordinator = 0;
  const std::size_t work_per_phase =
      cfg.phase_count == 0
          ? cfg.events_per_process
          : (cfg.events_per_process + cfg.phase_count - 1) / cfg.phase_count;

  for (std::size_t phase = 0; phase < cfg.phase_count; ++phase) {
    std::vector<MessageToken> reports;
    for (ProcessId p = 0; p < cfg.process_count; ++p) {
      const std::uint64_t work =
          1 + rng.below(std::max<std::size_t>(work_per_phase, 1));
      for (std::uint64_t k = 0; k < work; ++k) builder.local(p);
      if (p != coordinator) reports.push_back(builder.send(p));
    }
    builder.receive_all(coordinator, reports);
    const MessageToken release = builder.send(coordinator);
    for (ProcessId p = 0; p < cfg.process_count; ++p) {
      if (p != coordinator) builder.receive(p, release);
    }
  }
  return builder.build();
}

}  // namespace

Execution generate_execution(const WorkloadConfig& cfg) {
  SYNCON_REQUIRE(cfg.process_count >= 1, "need at least one process");
  SYNCON_REQUIRE(cfg.process_count >= 2 || cfg.send_probability == 0.0,
                 "messages need at least two processes");
  if (cfg.topology == Topology::Phases) return generate_phases(cfg);
  return generate_point_to_point(cfg);
}

WorkloadConfig random_workload_config(Xoshiro256StarStar& rng,
                                      const WorkloadBounds& bounds) {
  SYNCON_REQUIRE(bounds.min_processes >= 2 &&
                     bounds.min_processes <= bounds.max_processes,
                 "WorkloadBounds: need 2 <= min_processes <= max_processes");
  SYNCON_REQUIRE(
      bounds.min_events_per_process >= 1 &&
          bounds.min_events_per_process <= bounds.max_events_per_process,
      "WorkloadBounds: need 1 <= min_events <= max_events");
  constexpr Topology kTopologies[] = {Topology::Random, Topology::Ring,
                                      Topology::ClientServer,
                                      Topology::Broadcast, Topology::Phases};
  WorkloadConfig cfg;
  cfg.topology = kTopologies[rng.below(std::size(kTopologies))];
  cfg.process_count =
      rng.uniform(bounds.min_processes, bounds.max_processes);
  cfg.events_per_process = rng.uniform(bounds.min_events_per_process,
                                       bounds.max_events_per_process);
  cfg.send_probability =
      bounds.min_send_probability +
      (bounds.max_send_probability - bounds.min_send_probability) *
          rng.uniform01();
  cfg.receive_probability = 0.4 + 0.5 * rng.uniform01();
  cfg.phase_count = 1 + rng.below(std::max<std::size_t>(
                            bounds.max_phase_count, 1));
  cfg.seed = rng.next();
  return cfg;
}

}  // namespace syncon
