// Samplers that carve nonatomic events (intervals) out of an execution —
// the set A of "higher level groupings of the events of E that are of
// interest to an application" (Section 1 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/execution.hpp"
#include "nonatomic/interval.hpp"
#include "support/rng.hpp"

namespace syncon {

struct IntervalSpec {
  /// Number of processes the interval spans (clamped to the processes that
  /// actually have real events).
  std::size_t node_count = 2;
  /// Maximum component events contributed by each spanned process (>= 1).
  std::size_t max_events_per_node = 3;
};

/// Samples one nonatomic event: chooses `node_count` processes, then a
/// contiguous run of up to `max_events_per_node` real events on each.
/// Contiguous runs model an action's local execution footprint.
NonatomicEvent random_interval(const Execution& exec, Xoshiro256StarStar& rng,
                               const IntervalSpec& spec,
                               std::string label = {});

/// Samples `count` independent intervals (labels "I0", "I1", …).
std::vector<NonatomicEvent> random_intervals(const Execution& exec,
                                             Xoshiro256StarStar& rng,
                                             const IntervalSpec& spec,
                                             std::size_t count);

/// Carves one interval per index window: interval k spans the events with
/// per-process indices in [k·width+1, (k+1)·width] across all processes that
/// have them. Windowed intervals of the same execution are "naturally"
/// ordered, which makes relation outcomes interpretable in examples.
std::vector<NonatomicEvent> windowed_intervals(const Execution& exec,
                                               std::size_t width);

}  // namespace syncon
