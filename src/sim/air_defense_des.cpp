#include "sim/air_defense_des.hpp"

#include <map>

#include "support/contracts.hpp"

namespace syncon {

namespace {

// Message kinds (DesMessage::tag); DesMessage::value carries the round.
constexpr std::uint64_t kTrackReport = 1;
constexpr std::uint64_t kBrief = 2;
constexpr std::uint64_t kEngageOrder = 3;
constexpr std::uint64_t kAssessment = 4;

std::string round_label(const char* stage, std::int64_t round) {
  return std::string(stage) + "/" + std::to_string(round);
}

class Radar : public DesProcess {
 public:
  Radar(const AirDefenseDesConfig& cfg, ProcessId fusion)
      : cfg_(&cfg), fusion_(fusion) {}

  void on_start(DesContext& ctx) override {
    ctx.set_timer(cfg_->scan_period, 0);
  }

  void on_timer(DesContext& ctx, std::uint64_t) override {
    if (round_ >= static_cast<std::int64_t>(cfg_->rounds)) return;
    // Detection burst, then the track report.
    ctx.mark(round_label("detect", round_), ctx.execute(cfg_->detect_work));
    const EventId report =
        ctx.send(fusion_, kTrackReport, round_, cfg_->detect_work / 2 + 1);
    ctx.mark(round_label("detect", round_), report);
    ++round_;
    ctx.set_timer(cfg_->scan_period, 0);
  }

 private:
  const AirDefenseDesConfig* cfg_;
  ProcessId fusion_;
  std::int64_t round_ = 0;
};

class Fusion : public DesProcess {
 public:
  Fusion(const AirDefenseDesConfig& cfg, ProcessId command)
      : cfg_(&cfg), command_(command) {}

  void on_message(DesContext& ctx, const DesMessage& m) override {
    if (m.tag != kTrackReport) return;
    ctx.mark(round_label("track", m.value), ctx.current_receive());
    if (++reports_[m.value] < cfg_->radars) return;
    // All radars reported round k: correlate and brief command.
    ctx.mark(round_label("track", m.value), ctx.execute(cfg_->fusion_work));
    const EventId brief = ctx.send(command_, kBrief, m.value, 100);
    ctx.mark(round_label("track", m.value), brief);
  }

 private:
  const AirDefenseDesConfig* cfg_;
  ProcessId command_;
  std::map<std::int64_t, std::size_t> reports_;
};

class Command : public DesProcess {
 public:
  Command(const AirDefenseDesConfig& cfg, ProcessId battery0)
      : cfg_(&cfg), battery0_(battery0) {}

  void on_message(DesContext& ctx, const DesMessage& m) override {
    if (m.tag == kBrief) {
      ctx.mark(round_label("decide", m.value), ctx.current_receive());
      ctx.mark(round_label("decide", m.value),
               ctx.execute(cfg_->decide_work));
      // One engage order, multicast to every battery — all receives are
      // causally after this single send.
      std::vector<ProcessId> batteries;
      for (std::size_t b = 0; b < cfg_->batteries; ++b) {
        batteries.push_back(static_cast<ProcessId>(battery0_ + b));
      }
      const EventId order = ctx.multicast(batteries, kEngageOrder, m.value, 50);
      ctx.mark(round_label("decide", m.value), order);
    } else if (m.tag == kAssessment) {
      // Battle-damage assessment folds into command's local state.
      ctx.mark(round_label("bda", m.value), ctx.current_receive());
    }
  }

 private:
  const AirDefenseDesConfig* cfg_;
  ProcessId battery0_;
};

class Battery : public DesProcess {
 public:
  Battery(const AirDefenseDesConfig& cfg, ProcessId command)
      : cfg_(&cfg), command_(command) {}

  void on_message(DesContext& ctx, const DesMessage& m) override {
    if (m.tag != kEngageOrder) return;
    ctx.mark(round_label("engage", m.value), ctx.current_receive());
    ctx.mark(round_label("engage", m.value), ctx.execute(cfg_->engage_work));
    const EventId assess = ctx.send(command_, kAssessment, m.value, 100);
    ctx.mark(round_label("engage", m.value), assess);
  }

 private:
  const AirDefenseDesConfig* cfg_;
  ProcessId command_;
};

}  // namespace

DesEngine::Result make_air_defense_des(const AirDefenseDesConfig& cfg) {
  SYNCON_REQUIRE(cfg.radars >= 1 && cfg.batteries >= 1 && cfg.rounds >= 1,
                 "air defence needs radars, batteries and rounds");
  const auto fusion = static_cast<ProcessId>(cfg.radars);
  const auto command = static_cast<ProcessId>(cfg.radars + 1);
  const auto battery0 = static_cast<ProcessId>(cfg.radars + 2);

  std::vector<std::unique_ptr<DesProcess>> procs;
  for (std::size_t r = 0; r < cfg.radars; ++r) {
    procs.push_back(std::make_unique<Radar>(cfg, fusion));
  }
  procs.push_back(std::make_unique<Fusion>(cfg, command));
  procs.push_back(std::make_unique<Command>(cfg, battery0));
  for (std::size_t b = 0; b < cfg.batteries; ++b) {
    procs.push_back(std::make_unique<Battery>(cfg, command));
  }

  DesEngine engine(std::move(procs), cfg.network);
  // Generous horizon: rounds * scan period plus slack for the pipeline tail.
  const TimePoint horizon =
      static_cast<TimePoint>(cfg.rounds + 4) *
      (cfg.scan_period + cfg.network.max_latency * 4 + cfg.decide_work +
       cfg.fusion_work + cfg.engage_work);
  engine.run(horizon);
  return engine.finish();
}

}  // namespace syncon
