#include "sim/soak.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "cuts/watermark.hpp"
#include "online/online_monitor.hpp"
#include "support/contracts.hpp"

namespace syncon {

namespace {

/// One tracked action pair moving through its lifecycle. Pairs are
/// processed strictly head-of-line (complete / forget in opening order) so
/// the Definite-firing sequence is the same no matter how the report faults
/// interleave — the property the identity assertions rely on.
struct PendingPair {
  std::uint64_t n = 0;
  std::string a, b;
  bool completed = false;
  bool definite = false;  // set by the watch callback
  std::vector<EventId> events;
};

}  // namespace

SoakResult run_soak(const SoakConfig& config) {
  const std::size_t n_proc = config.processes;
  SYNCON_REQUIRE(n_proc >= 2, "the soak ring needs at least two processes");
  SYNCON_REQUIRE(config.action_every > 0 && config.recover_every > 0,
                 "soak cadences must be positive");

  SoakResult result;
  OnlineSystem sys(n_proc);
  OnlineMonitor monitor(n_proc);  // feed-only: sees reports, not the system

  const bool flight_was_enabled = obs::flight_enabled();
  if (config.capture_observability) {
    monitor.set_latency_tracking(true);
    obs::set_flight_enabled(true);
  }

  FaultPlan app_plan;
  app_plan.link = config.app_link;
  app_plan.seed = config.seed;
  FaultyNetwork app(n_proc, app_plan);

  // One lossy report channel per process, each with its own RNG stream.
  std::vector<FaultyChannel> reports;
  reports.reserve(n_proc);
  for (std::size_t p = 0; p < n_proc; ++p) {
    reports.emplace_back(config.report_link,
                         config.seed + 0x9e3779b9u * (p + 1));
  }

  std::int64_t stamp = 0;  // strictly increasing physical time, µs
  TimePoint now = 0;
  constexpr Duration kCycleStep = 8;

  // Application-level reliability: sends not yet consumed by the ring
  // successor, oldest first. Their indices pin the app side of the
  // watermark (wire_of must stay servable until delivery).
  struct OutstandingSend {
    EventId source;
    std::uint64_t last_shipped_cycle = 0;
  };
  std::vector<std::deque<OutstandingSend>> outstanding(n_proc);

  // Event → action label, while the pair is alive.
  std::unordered_map<EventId, std::string> label_of;
  std::unordered_map<std::string, std::size_t> expected_events;
  std::deque<PendingPair> pairs;
  std::uint64_t next_pair = 0;

  const auto emit_report = [&](EventId e) {
    reports[e.process].push(WireMessage{e, sys.clock_of(e)}, now);
  };

  const auto route_report = [&](const WireMessage& r) {
    const auto it = label_of.find(r.source);
    if (it != label_of.end() &&
        (monitor.is_open(it->second) || monitor.is_complete(it->second))) {
      monitor.ingest(it->second, r);
    } else {
      monitor.observe(r);
    }
  };

  const auto recover = [&]() {
    monitor.checkpoint(sys.snapshot());
    while (true) {
      const RetransmitRequest req =
          monitor.resync_request(config.resync_chunk);
      if (req.empty()) break;
      ++result.resync_rounds;
      for (const WireMessage& reply : sys.serve(req)) route_report(reply);
    }
  };

  // Head-of-line pair processing: complete the front pairs whose reports
  // have all been folded, register their watch, and forget the front pairs
  // whose watch has fired Definite.
  const auto advance_pairs = [&]() {
    for (PendingPair& pair : pairs) {
      if (pair.completed) continue;
      const bool ready =
          monitor.is_open(pair.a) && monitor.is_open(pair.b) &&
          monitor.recorded_events(pair.a) == expected_events[pair.a] &&
          monitor.recorded_events(pair.b) == expected_events[pair.b];
      if (!ready) break;  // strictly in opening order — see PendingPair
      monitor.complete(pair.a);
      monitor.complete(pair.b);
      pair.completed = true;
      bool* definite = &pair.definite;
      std::vector<std::string>* log = &result.definite_verdicts;
      monitor.watch({Relation::R3, ProxyKind::Begin, ProxyKind::End}, pair.a,
                    pair.b,
                    [definite, log](const std::string& x, const std::string& y,
                                    bool holds, Confidence conf) {
                      if (conf != Confidence::Definite) return;
                      *definite = true;
                      log->push_back(x + "|" + y + "|" +
                                     (holds ? "holds" : "fails"));
                    });
    }
    while (!pairs.empty() && pairs.front().definite) {
      const PendingPair& pair = pairs.front();
      monitor.forget(pair.a);
      monitor.forget(pair.b);
      expected_events.erase(pair.a);
      expected_events.erase(pair.b);
      for (const EventId& e : pair.events) label_of.erase(e);
      pairs.pop_front();
    }
  };

  for (std::uint64_t cycle = 0; cycle < config.cycles; ++cycle) {
    now += kCycleStep;

    // Open a new tracked pair: two locals per action, spread over the ring.
    if (cycle % config.action_every == 0) {
      PendingPair pair;
      pair.n = next_pair++;
      pair.a = "A#" + std::to_string(pair.n);
      pair.b = "B#" + std::to_string(pair.n);
      monitor.begin(pair.a);
      monitor.begin(pair.b);
      const ProcessId pa = static_cast<ProcessId>(pair.n % n_proc);
      const ProcessId offsets[2][2] = {{0, 1}, {2, 3}};
      const std::string* labels[2] = {&pair.a, &pair.b};
      for (int which = 0; which < 2; ++which) {
        for (const ProcessId off : offsets[which]) {
          const ProcessId p = (pa + off) % static_cast<ProcessId>(n_proc);
          const EventId e = sys.local(p, ++stamp);
          label_of.emplace(e, *labels[which]);
          pair.events.push_back(e);
          ++expected_events[*labels[which]];
          emit_report(e);
        }
      }
      pairs.push_back(std::move(pair));
    }

    // Ring traffic: every process sends once to its successor.
    for (ProcessId p = 0; p < n_proc; ++p) {
      const ProcessId succ = (p + 1) % static_cast<ProcessId>(n_proc);
      const WireMessage w = sys.send(p, ++stamp);
      app.push(p, succ, w, now);
      outstanding[p].push_back({w.source, cycle});
      emit_report(w.source);
    }

    // Pump the application network; fresh receives generate reports too.
    for (ProcessId p = 0; p < n_proc; ++p) {
      for (const Arrival& a : app.pop_ready(p, now)) {
        if (sys.already_delivered(p, a.message.source)) {
          sys.deliver(p, a.message, OnlineSystem::kNoTime);  // counted dup
          continue;
        }
        const EventId e = sys.deliver(p, a.message, ++stamp);
        emit_report(e);
      }
    }

    // Harness-level reliability: drop consumed sends off the outstanding
    // queues, re-ship the ones the faults have eaten.
    for (ProcessId p = 0; p < n_proc; ++p) {
      const ProcessId succ = (p + 1) % static_cast<ProcessId>(n_proc);
      auto& queue = outstanding[p];
      while (!queue.empty() &&
             sys.already_delivered(succ, queue.front().source)) {
        queue.pop_front();
      }
      for (OutstandingSend& send : queue) {
        if (cycle - send.last_shipped_cycle >= config.retransmit_after &&
            !sys.already_delivered(succ, send.source)) {
          app.push(p, succ, sys.wire_of(send.source), now);
          send.last_shipped_cycle = cycle;
        }
      }
    }

    // Pump the report feed into the monitor.
    for (ProcessId p = 0; p < n_proc; ++p) {
      for (const Arrival& a : reports[p].pop_ready(now)) {
        route_report(a.message);
      }
    }
    advance_pairs();

    if (cycle > 0 && cycle % config.recover_every == 0) {
      recover();
      advance_pairs();
    }

    if (config.compact_every > 0 && cycle > 0 &&
        cycle % config.compact_every == 0) {
      result.live_log_peak =
          std::max(result.live_log_peak, sys.live_log_events());
      VectorClock app_pin(n_proc, 0);
      for (ProcessId p = 0; p < n_proc; ++p) {
        app_pin.set(p, outstanding[p].empty()
                           ? static_cast<ClockValue>(sys.executed(p)) + 1
                           : outstanding[p].front().source.index);
      }
      const VectorClock pins[] = {monitor.watermark_pin(), app_pin};
      const std::size_t reclaimed = sys.compact(low_watermark(pins));
      if (reclaimed > 0) ++result.compactions;
      result.live_log_samples.push_back(sys.live_log_events());
    }

    if (config.on_cycle) config.on_cycle(cycle);
  }

  // Drain: one final recovery pass settles every in-flight pair.
  for (ProcessId p = 0; p < n_proc; ++p) {
    for (const Arrival& a : reports[p].drain()) route_report(a.message);
  }
  recover();
  advance_pairs();

  result.executed_events = sys.total_executed();
  result.reclaimed_events = sys.reclaimed_events();
  result.live_log_final = sys.live_log_events();
  result.live_log_peak = std::max(result.live_log_peak, result.live_log_final);
  result.definite_fires = monitor.definite_fires();
  result.pending_fires = monitor.pending_fires();
  result.duplicate_reports = monitor.duplicate_reports();
  result.app_stats = app.stats();
  for (const FaultyChannel& ch : reports) result.report_stats += ch.stats();

  if (config.late_joiner_probe) {
    // A monitor born after compaction: the authoritative snapshot claims
    // everything ever executed, so its resync crosses the watermark and is
    // served from the checkpoint surface.
    OnlineMonitor late(n_proc);
    late.checkpoint(sys.snapshot());
    std::uint64_t rounds = 0;
    while (late.missing_report_count() > 0 && rounds < 100000) {
      ++rounds;
      const RetransmitRequest req = late.resync_request(config.resync_chunk);
      for (const WireMessage& reply : sys.serve(req)) {
        if (reply.source.index <= sys.reclaimed_before(reply.source.process)) {
          ++result.surface_replies;
        }
        late.observe(reply);
      }
      late.adopt_checkpoint(sys.checkpoint());
    }
    result.late_joiner_converged = late.missing_report_count() == 0;
  }

  if (config.capture_observability) {
    result.waterfalls.assign(monitor.waterfalls().begin(),
                             monitor.waterfalls().end());
    result.flight = obs::FlightRecorder::global().dump();
    if (config.compact_every == 0) {
      // Only an uncompacted log can materialize its full execution — the
      // causal-trace exporters need every event.
      result.execution =
          std::make_shared<const Execution>(sys.to_execution());
    }
    obs::set_flight_enabled(flight_was_enabled);
  }

  return result;
}

// --- multi-tenant tenant scripts ---------------------------------------------

TenantSessionCore::TenantSessionCore(std::size_t processes,
                                     std::size_t resync_chunk)
    : sys_(processes), monitor_(processes), resync_chunk_(resync_chunk) {
  SYNCON_REQUIRE(resync_chunk_ > 0, "resync chunk must be positive");
}

void TenantSessionCore::route_report(const std::string& label,
                                     const WireMessage& report) {
  if (!label.empty() &&
      (monitor_.is_open(label) || monitor_.is_complete(label))) {
    monitor_.try_ingest(label, report);
  } else {
    monitor_.try_observe(report);
  }
}

void TenantSessionCore::apply(const TenantOp& op) {
  try {
    apply_checked(op);
  } catch (const ContractViolation&) {
    // A corrupted or spliced stream must degrade this tenant only — count
    // and carry on, exactly like the monitor's own wire quarantine.
    ++quarantined_ops_;
  }
  ++applied_;
}

void TenantSessionCore::apply_checked(const TenantOp& op) {
  switch (op.kind) {
    case TenantOp::Kind::kBegin:
      monitor_.begin(op.label);
      break;
    case TenantOp::Kind::kWatch:
      monitor_.watch(op.relation, op.label, op.label2,
                     [this](const std::string& x, const std::string& y,
                            bool holds, Confidence conf) {
                       if (conf != Confidence::Definite) return;
                       definite_labels_.insert(x);
                       definite_labels_.insert(y);
                       verdicts_.push_back(x + "|" + y + "|" +
                                           (holds ? "holds" : "fails"));
                     });
      break;
    case TenantOp::Kind::kComplete:
      monitor_.complete(op.label);
      break;
    case TenantOp::Kind::kForget: {
      monitor_.forget(op.label);
      definite_labels_.erase(op.label);
      const auto it = events_of_label_.find(op.label);
      if (it != events_of_label_.end()) {
        for (const EventId& e : it->second) label_of_.erase(e);
        events_of_label_.erase(it);
      }
      break;
    }
    case TenantOp::Kind::kEvent:
      sys_.restore_event(op.event, op.clock, op.sources, op.time);
      if (!op.label.empty()) {
        label_of_[op.event] = op.label;
        events_of_label_[op.label].push_back(op.event);
      }
      break;
    case TenantOp::Kind::kReport:
      route_report(op.label, WireMessage{op.event, op.clock});
      break;
    case TenantOp::Kind::kCheckpoint: {
      monitor_.checkpoint(op.clock);
      // Local resync loop, served from the replica. The no-progress guard
      // matters on a degraded stream: if journal frames were quarantined the
      // replica cannot serve everything the checkpoint claims, and the gaps
      // must stay open (PendingGap) instead of spinning forever.
      std::size_t missing = monitor_.missing_report_count();
      while (missing > 0) {
        const RetransmitRequest request =
            monitor_.resync_request(resync_chunk_);
        if (request.empty()) break;
        for (const WireMessage& reply : sys_.serve(request)) {
          const auto it = label_of_.find(reply.source);
          route_report(it == label_of_.end() ? std::string() : it->second,
                       reply);
        }
        const std::size_t after = monitor_.missing_report_count();
        if (after >= missing) break;
        missing = after;
      }
      break;
    }
  }
}

std::size_t TenantSessionCore::compact_at_pin() {
  return sys_.compact(monitor_.watermark_pin());
}

TenantScript generate_tenant_script(const TenantWorkload& workload) {
  const std::size_t n_proc = workload.processes;
  SYNCON_REQUIRE(n_proc >= 2, "a tenant ring needs at least two processes");
  SYNCON_REQUIRE(workload.action_every > 0 && workload.recover_every > 0,
                 "tenant cadences must be positive");

  TenantScript script;
  script.processes = n_proc;
  script.resync_chunk = workload.resync_chunk;

  OnlineSystem sys(n_proc);  // the tenant's authoritative execution
  // The generation-time reference consumer: fed every op as it is emitted,
  // so script.reference_verdicts is by construction the standalone outcome.
  TenantSessionCore core(n_proc, workload.resync_chunk);

  std::vector<FaultyChannel> reports;
  reports.reserve(n_proc);
  for (std::size_t p = 0; p < n_proc; ++p) {
    reports.emplace_back(workload.report_link,
                         workload.seed + 0x9e3779b9u * (p + 1));
  }

  std::int64_t stamp = 0;
  TimePoint now = 0;
  constexpr Duration kCycleStep = 8;

  std::unordered_map<EventId, std::string> label_of;
  std::unordered_map<std::string, std::size_t> expected_events;
  std::deque<PendingPair> pairs;
  std::uint64_t next_pair = 0;

  const auto emit = [&](TenantOp op) {
    core.apply(op);
    script.ops.push_back(std::move(op));
  };

  const auto emit_event = [&](EventId e, const std::string& label) {
    TenantOp op;
    op.kind = TenantOp::Kind::kEvent;
    op.label = label;
    op.event = e;
    op.clock = sys.clock_of(e);
    const std::span<const EventId> sources = sys.sources_of(e);
    op.sources.assign(sources.begin(), sources.end());
    op.time = sys.time_of(e);
    emit(std::move(op));
  };

  const auto offer_report = [&](EventId e) {
    reports[e.process].push(WireMessage{e, sys.clock_of(e)}, now);
  };

  const auto emit_report = [&](const WireMessage& r) {
    TenantOp op;
    op.kind = TenantOp::Kind::kReport;
    op.event = r.source;
    op.clock = r.clock;
    const auto it = label_of.find(r.source);
    if (it != label_of.end()) op.label = it->second;
    emit(std::move(op));
  };

  const auto emit_label_op = [&](TenantOp::Kind kind,
                                 const std::string& label) {
    TenantOp op;
    op.kind = kind;
    op.label = label;
    emit(std::move(op));
  };

  const auto emit_checkpoint = [&]() {
    TenantOp op;
    op.kind = TenantOp::Kind::kCheckpoint;
    op.clock = sys.snapshot();
    emit(std::move(op));
  };

  const auto advance_pairs = [&]() {
    for (PendingPair& pair : pairs) {
      if (pair.completed) continue;
      const OnlineMonitor& monitor = core.monitor();
      const bool ready =
          monitor.is_open(pair.a) && monitor.is_open(pair.b) &&
          monitor.recorded_events(pair.a) == expected_events[pair.a] &&
          monitor.recorded_events(pair.b) == expected_events[pair.b];
      if (!ready) break;  // strictly in opening order — see PendingPair
      emit_label_op(TenantOp::Kind::kComplete, pair.a);
      emit_label_op(TenantOp::Kind::kComplete, pair.b);
      pair.completed = true;
      TenantOp watch;
      watch.kind = TenantOp::Kind::kWatch;
      watch.relation = {Relation::R3, ProxyKind::Begin, ProxyKind::End};
      watch.label = pair.a;
      watch.label2 = pair.b;
      emit(std::move(watch));
    }
    while (!pairs.empty() && pairs.front().completed &&
           core.definite(pairs.front().a)) {
      const PendingPair& pair = pairs.front();
      emit_label_op(TenantOp::Kind::kForget, pair.a);
      emit_label_op(TenantOp::Kind::kForget, pair.b);
      expected_events.erase(pair.a);
      expected_events.erase(pair.b);
      for (const EventId& e : pair.events) label_of.erase(e);
      pairs.pop_front();
    }
  };

  for (std::uint64_t cycle = 0; cycle < workload.cycles; ++cycle) {
    now += kCycleStep;

    if (cycle % workload.action_every == 0) {
      PendingPair pair;
      pair.n = next_pair++;
      pair.a = "A#" + std::to_string(pair.n);
      pair.b = "B#" + std::to_string(pair.n);
      emit_label_op(TenantOp::Kind::kBegin, pair.a);
      emit_label_op(TenantOp::Kind::kBegin, pair.b);
      const ProcessId pa = static_cast<ProcessId>(pair.n % n_proc);
      const ProcessId offsets[2][2] = {{0, 1}, {2, 3}};
      const std::string* labels[2] = {&pair.a, &pair.b};
      for (int which = 0; which < 2; ++which) {
        for (const ProcessId off : offsets[which]) {
          const ProcessId p = (pa + off) % static_cast<ProcessId>(n_proc);
          const EventId e = sys.local(p, ++stamp);
          label_of.emplace(e, *labels[which]);
          pair.events.push_back(e);
          ++expected_events[*labels[which]];
          emit_event(e, *labels[which]);
          offer_report(e);
        }
      }
      pairs.push_back(std::move(pair));
    }

    // Ring traffic on a reliable application network: the tenant's journal
    // stream is its WAL, so the execution itself is never in question —
    // only the report feed is lossy.
    for (ProcessId p = 0; p < n_proc; ++p) {
      const ProcessId succ = (p + 1) % static_cast<ProcessId>(n_proc);
      const WireMessage w = sys.send(p, ++stamp);
      emit_event(w.source, std::string());
      offer_report(w.source);
      const EventId e = sys.deliver(succ, w, ++stamp);
      emit_event(e, std::string());
      offer_report(e);
    }

    for (ProcessId p = 0; p < n_proc; ++p) {
      for (const Arrival& a : reports[p].pop_ready(now)) {
        emit_report(a.message);
      }
    }
    advance_pairs();

    if (cycle > 0 && cycle % workload.recover_every == 0) {
      emit_checkpoint();
      advance_pairs();
    }
  }

  // Drain and settle: the final checkpoint's resync recovers every dropped
  // report (the reference replica holds the full journal), so every pair
  // completes and fires Definite.
  for (ProcessId p = 0; p < n_proc; ++p) {
    for (const Arrival& a : reports[p].drain()) emit_report(a.message);
  }
  emit_checkpoint();
  advance_pairs();
  for (int round = 0; round < 8 && !pairs.empty(); ++round) {
    emit_checkpoint();
    advance_pairs();
  }
  SYNCON_REQUIRE(pairs.empty(), "tenant generation failed to settle");

  script.executed_events = sys.total_executed();
  script.reference_verdicts = core.definite_verdicts();
  script.reference_quarantined = core.quarantined();
  return script;
}

std::vector<std::string> run_tenant_script(const TenantScript& script) {
  TenantSessionCore core(script.processes, script.resync_chunk);
  for (const TenantOp& op : script.ops) core.apply(op);
  return core.definite_verdicts();
}

}  // namespace syncon
