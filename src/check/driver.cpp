#include "check/driver.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <ostream>
#include <utility>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace syncon::check {

namespace {

std::vector<const PropertyInfo*> resolve_properties(
    const std::vector<std::string>& names) {
  std::vector<const PropertyInfo*> selected;
  if (names.empty()) {
    for (const PropertyInfo& info : all_properties()) selected.push_back(&info);
    return selected;
  }
  for (const std::string& name : names) {
    const PropertyInfo* info = find_property(name);
    SYNCON_REQUIRE(info != nullptr, "unknown property name");
    selected.push_back(info);
  }
  return selected;
}

std::string size_of(const CheckCase& c) {
  return std::to_string(c.process_count()) + " procs / " +
         std::to_string(c.total_events()) + " events / " +
         std::to_string(c.messages.size()) + " msgs";
}

/// Scoped exhaustive-mode budget: lifts the schedule_invariance walk bound
/// for the run and restores the previous config on exit.
class ExhaustiveBudget {
 public:
  explicit ExhaustiveBudget(bool engage)
      : engaged_(engage), saved_(schedule_invariance_config()) {
    if (engaged_) {
      schedule_invariance_config().max_schedules = std::uint64_t{1} << 20;
    }
  }
  ~ExhaustiveBudget() {
    if (engaged_) schedule_invariance_config() = saved_;
  }
  ExhaustiveBudget(const ExhaustiveBudget&) = delete;
  ExhaustiveBudget& operator=(const ExhaustiveBudget&) = delete;

 private:
  bool engaged_;
  ScheduleInvarianceConfig saved_;
};

}  // namespace

std::uint64_t case_seed_for(std::uint64_t master_seed, std::size_t index) {
  // SplitMix64 advances its state by a fixed gamma per output, so the i-th
  // stream element can be produced directly from a shifted seed.
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  return SplitMix64(master_seed + kGamma * index).next();
}

PropertyResult run_property_on_case(const PropertyInfo& property,
                                    const CheckCase& c) {
  try {
    return property.fn(c);
  } catch (const std::exception& e) {
    return {false, std::string("exception: ") + e.what()};
  }
}

DriverReport run_conformance(const DriverOptions& options, std::ostream* log) {
  std::vector<const PropertyInfo*> properties =
      resolve_properties(options.properties);
  if (options.exhaustive) {
    const PropertyInfo* exhaustive_prop = find_property("schedule_invariance");
    const bool selected =
        std::find(properties.begin(), properties.end(), exhaustive_prop) !=
        properties.end();
    if (!selected) properties.push_back(exhaustive_prop);
  }
  const ExhaustiveBudget budget_guard(options.exhaustive);
  SYNCON_REQUIRE(options.max_cases > 0 || options.budget_seconds > 0,
                 "unlimited cases need a time budget");

  DriverReport report;
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_budget = [&] {
    if (options.budget_seconds <= 0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= options.budget_seconds;
  };

  for (std::size_t i = 0;
       (options.max_cases == 0 || i < options.max_cases) && !out_of_budget();
       ++i) {
    const std::uint64_t seed = case_seed_for(options.seed, i);
    const CheckCase c = generate_case(seed, options.limits);
    ++report.cases_run;
    for (const PropertyInfo* property : properties) {
      ++report.property_runs;
      const PropertyResult result = run_property_on_case(*property, c);
      if (result.passed) continue;

      FailureReport failure;
      failure.property = std::string(property->name);
      failure.case_seed = seed;
      failure.case_index = i;
      failure.detail = result.message;
      failure.original = c;
      failure.minimized = c;
      if (log) {
        *log << "FAIL " << property->name << " case #" << i << " seed "
             << seed << " (" << size_of(c) << "): " << result.message
             << '\n';
      }
      if (options.shrink_failures) {
        failure.minimized = shrink_case(
            c,
            [property](const CheckCase& candidate) {
              return run_property_on_case(*property, candidate);
            },
            &failure.shrink_stats, options.shrink);
        if (log) {
          *log << "  shrunk to " << size_of(failure.minimized) << " in "
               << failure.shrink_stats.evaluations << " evaluations ("
               << failure.shrink_stats.accepted << " accepted, "
               << failure.shrink_stats.rounds << " rounds)\n";
        }
      }
      failure.repro = repro_to_string(
          failure.minimized, ReproMeta{failure.property, failure.case_seed});
      report.failures.push_back(std::move(failure));
      if (options.stop_after_failures != 0 &&
          report.failures.size() >= options.stop_after_failures) {
        return report;
      }
    }
    if (log && (i + 1) % 50 == 0) {
      *log << "... " << (i + 1) << " cases, " << report.property_runs
           << " property runs, " << report.failures.size() << " failures\n";
    }
  }
  return report;
}

}  // namespace syncon::check
