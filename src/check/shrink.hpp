// Delta-debugging shrinker for failing conformance cases (ddmin in the
// spirit of Zeller & Hildebrandt, specialised to the CheckCase structure):
// given a case on which a property fails, minimize it along structured axes
//   1. drop whole processes,
//   2. truncate per-process event chains,
//   3. drop message edges (chunked ddmin),
//   4. shrink X / Y membership (chunked ddmin),
//   5. squeeze out unreferenced interior events (index compaction),
// re-running the property on every candidate and keeping only edits that
// preserve the failure. Deterministic: the result is a pure function of the
// input case and the property.
#pragma once

#include <cstddef>
#include <functional>

#include "check/case.hpp"
#include "check/properties.hpp"

namespace syncon::check {

/// The predicate the shrinker preserves. Must be deterministic (see
/// fingerprint()); `passed == false` is the failure being minimized.
using CaseProperty = std::function<PropertyResult(const CheckCase&)>;

struct ShrinkOptions {
  /// Full passes over all four axes; the loop also stops at a fixpoint.
  std::size_t max_rounds = 12;
  /// Hard cap on property evaluations (deterministic time bound).
  std::size_t max_evaluations = 50000;
};

struct ShrinkStats {
  std::size_t evaluations = 0;  ///< property runs on candidates
  std::size_t accepted = 0;     ///< candidates that kept the failure
  std::size_t rounds = 0;       ///< full axis passes performed
};

/// Minimizes `failing` (on which `property` must fail) and returns the
/// smallest failing case found. Every intermediate candidate is validated
/// via materialize(), so the result is always a well-formed case.
CheckCase shrink_case(const CheckCase& failing, const CaseProperty& property,
                      ShrinkStats* stats = nullptr,
                      const ShrinkOptions& options = {});

}  // namespace syncon::check
