#include "check/generators.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/interval_picker.hpp"
#include "support/contracts.hpp"

namespace syncon::check {

CheckCase generate_case(std::uint64_t case_seed, const GenLimits& limits) {
  Xoshiro256StarStar rng(case_seed);
  const WorkloadConfig cfg = random_workload_config(rng, limits.workload);
  const Execution exec = generate_execution(cfg);

  IntervalSpec spec;
  spec.node_count =
      1 + rng.below(std::max<std::size_t>(limits.max_interval_nodes, 1));
  spec.max_events_per_node =
      1 + rng.below(std::max<std::size_t>(limits.max_events_per_node, 1));
  const NonatomicEvent x = random_interval(exec, rng, spec, "X");
  // Y gets its own independently sampled shape.
  spec.node_count =
      1 + rng.below(std::max<std::size_t>(limits.max_interval_nodes, 1));
  spec.max_events_per_node =
      1 + rng.below(std::max<std::size_t>(limits.max_events_per_node, 1));
  const NonatomicEvent y = random_interval(exec, rng, spec, "Y");

  return case_from_execution(exec, x.events(), y.events());
}

namespace {

// Mirror AST for condition generation, independent of monitor/predicate's
// own representation so the differential pair shares no code with the
// parser it tests.
struct Node {
  enum class Kind { Atom, Not, And, Or } kind = Kind::Atom;
  RelationId atom{};
  std::shared_ptr<Node> left, right;

  std::string render() const {
    switch (kind) {
      case Kind::Atom: {
        std::string s = to_string(atom.relation);
        s += "(";
        s += to_string(atom.proxy_x);
        s += ",";
        s += to_string(atom.proxy_y);
        s += ")";
        return s;
      }
      case Kind::Not:
        return "!(" + left->render() + ")";
      case Kind::And:
        return "(" + left->render() + ") & (" + right->render() + ")";
      case Kind::Or:
        return "(" + left->render() + ") | (" + right->render() + ")";
    }
    return {};
  }

  bool evaluate(const RelationEvaluator& eval, EventHandle x,
                EventHandle y) const {
    switch (kind) {
      case Kind::Atom:
        return eval.holds(atom, x, y);
      case Kind::Not:
        return !left->evaluate(eval, x, y);
      case Kind::And:
        return left->evaluate(eval, x, y) && right->evaluate(eval, x, y);
      case Kind::Or:
        return left->evaluate(eval, x, y) || right->evaluate(eval, x, y);
    }
    return false;
  }
};

std::shared_ptr<Node> random_node(Xoshiro256StarStar& rng, int depth) {
  auto node = std::make_shared<Node>();
  const std::uint64_t pick = depth <= 0 ? 0 : rng.below(4);
  switch (pick) {
    case 0: {
      node->kind = Node::Kind::Atom;
      const auto ids = all_relation_ids();
      node->atom = ids[rng.below(ids.size())];
      break;
    }
    case 1:
      node->kind = Node::Kind::Not;
      node->left = random_node(rng, depth - 1);
      break;
    case 2:
      node->kind = Node::Kind::And;
      node->left = random_node(rng, depth - 1);
      node->right = random_node(rng, depth - 1);
      break;
    default:
      node->kind = Node::Kind::Or;
      node->left = random_node(rng, depth - 1);
      node->right = random_node(rng, depth - 1);
      break;
  }
  return node;
}

}  // namespace

ConditionCase generate_condition(Xoshiro256StarStar& rng, int max_depth) {
  SYNCON_REQUIRE(max_depth >= 0, "generate_condition: negative depth");
  const std::shared_ptr<Node> root = random_node(rng, max_depth);
  ConditionCase out;
  out.text = root->render();
  out.oracle = [root](const RelationEvaluator& eval, EventHandle x,
                      EventHandle y) { return root->evaluate(eval, x, y); };
  return out;
}

LinkFaultConfig generate_link_faults(Xoshiro256StarStar& rng) {
  LinkFaultConfig link;
  link.drop_probability = 0.05 + 0.30 * rng.uniform01();
  link.duplicate_probability = 0.05 + 0.30 * rng.uniform01();
  link.reorder_probability = 0.05 + 0.30 * rng.uniform01();
  link.min_delay = 1;
  link.max_delay = static_cast<Duration>(1 + rng.below(60));
  return link;
}

}  // namespace syncon::check
