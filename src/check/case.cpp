#include "check/case.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "monitor/trace_io.hpp"
#include "support/contracts.hpp"

namespace syncon::check {

namespace {

constexpr const char* kIntervalHeader = "syncon-intervals 1";
constexpr const char* kPropertyTag = "# property:";
constexpr const char* kCaseSeedTag = "# case-seed:";

bool valid_ref(const CheckCase& c, const EventId& e) {
  return e.process < c.process_count() && e.index >= 1 &&
         e.index <= c.events_per_process[e.process];
}

}  // namespace

std::size_t CheckCase::total_events() const {
  std::size_t total = 0;
  for (const EventIndex n : events_per_process) total += n;
  return total;
}

bool CheckCase::structurally_valid() const {
  if (events_per_process.empty()) return false;
  if (x_members.empty() || y_members.empty()) return false;
  for (const Message& m : messages) {
    if (!valid_ref(*this, m.source) || !valid_ref(*this, m.target)) {
      return false;
    }
    if (m.source.process == m.target.process) return false;
  }
  for (const EventId& e : x_members) {
    if (!valid_ref(*this, e)) return false;
  }
  for (const EventId& e : y_members) {
    if (!valid_ref(*this, e)) return false;
  }
  return true;
}

std::optional<MaterializedCase> materialize(const CheckCase& c) {
  if (!c.structurally_valid()) return std::nullopt;
  const std::size_t procs = c.process_count();

  // Message sources per receive event.
  std::map<EventId, std::vector<EventId>> sources;
  for (const Message& m : c.messages) sources[m.target].push_back(m.source);

  // Kahn-style construction: repeatedly append the next event of some
  // process once every message source it consumes has been built. Editing a
  // valid case only ever removes edges, so an order always exists for
  // shrinker candidates; untrusted repro input may genuinely be cyclic.
  ExecutionBuilder builder(procs);
  std::vector<EventIndex> next(procs, 1);
  std::size_t built = 0;
  const std::size_t total = c.total_events();
  bool progress = true;
  while (built < total && progress) {
    progress = false;
    for (ProcessId p = 0; p < procs; ++p) {
      while (next[p] <= c.events_per_process[p]) {
        const EventId e{p, next[p]};
        const auto it = sources.find(e);
        bool ready = true;
        if (it != sources.end()) {
          for (const EventId& s : it->second) {
            if (s.index >= next[s.process] ||
                (s.process == p && s.index >= e.index)) {
              ready = false;
              break;
            }
          }
        }
        if (!ready) break;
        if (it == sources.end()) {
          builder.local(p);
        } else {
          builder.receive_from(p, it->second);
        }
        ++next[p];
        ++built;
        progress = true;
      }
    }
  }
  if (built < total) return std::nullopt;  // cyclic message structure

  auto exec = std::make_shared<const Execution>(builder.build());
  NonatomicEvent x(*exec, c.x_members, "X");
  NonatomicEvent y(*exec, c.y_members, "Y");
  return MaterializedCase{std::move(exec), std::move(x), std::move(y)};
}

CheckCase case_from_execution(const Execution& exec,
                              const std::vector<EventId>& x_members,
                              const std::vector<EventId>& y_members) {
  CheckCase c;
  c.events_per_process.reserve(exec.process_count());
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    c.events_per_process.push_back(exec.real_count(p));
  }
  c.messages = exec.messages();
  c.x_members = x_members;
  c.y_members = y_members;
  return c;
}

std::uint64_t fingerprint(const CheckCase& c) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(c.process_count());
  for (const EventIndex n : c.events_per_process) mix(n);
  mix(c.messages.size());
  for (const Message& m : c.messages) {
    mix((std::uint64_t{m.source.process} << 32) | m.source.index);
    mix((std::uint64_t{m.target.process} << 32) | m.target.index);
  }
  for (const auto* members : {&c.x_members, &c.y_members}) {
    mix(members->size());
    for (const EventId& e : *members) {
      mix((std::uint64_t{e.process} << 32) | e.index);
    }
  }
  return h;
}

void write_repro(std::ostream& os, const CheckCase& c, const ReproMeta& meta) {
  const std::optional<MaterializedCase> m = materialize(c);
  SYNCON_REQUIRE(m.has_value(), "write_repro: case does not materialize");
  os << "# syncon_check repro — replay with: syncon_check --repro <this file>\n";
  if (!meta.property.empty()) os << kPropertyTag << " " << meta.property << "\n";
  os << kCaseSeedTag << " " << meta.case_seed << "\n";
  write_trace(os, *m->exec);
  write_intervals(os, {m->x, m->y});
}

std::string repro_to_string(const CheckCase& c, const ReproMeta& meta) {
  std::ostringstream oss;
  write_repro(oss, c, meta);
  return oss.str();
}

Repro load_repro(std::istream& is) {
  // Split the stream at the interval header: read_trace consumes its whole
  // input, so the two sections are parsed separately.
  std::string line;
  std::string trace_text;
  std::string interval_text;
  Repro out;
  bool in_intervals = false;
  while (std::getline(is, line)) {
    if (line.rfind(kPropertyTag, 0) == 0) {
      std::string value = line.substr(std::string(kPropertyTag).size());
      const auto start = value.find_first_not_of(' ');
      out.meta.property = start == std::string::npos ? "" : value.substr(start);
      continue;
    }
    if (line.rfind(kCaseSeedTag, 0) == 0) {
      try {
        out.meta.case_seed =
            std::stoull(line.substr(std::string(kCaseSeedTag).size()));
      } catch (const std::exception&) {
        throw TraceFormatError(0, "malformed case-seed line", line);
      }
      continue;
    }
    if (line == kIntervalHeader) in_intervals = true;
    (in_intervals ? interval_text : trace_text) += line + "\n";
  }

  std::istringstream trace_in(trace_text);
  const Execution exec = read_trace(trace_in);
  std::istringstream intervals_in(interval_text);
  const std::vector<NonatomicEvent> intervals =
      read_intervals(intervals_in, exec);
  if (intervals.size() != 2) {
    throw TraceFormatError(0, "repro must declare exactly two intervals");
  }
  out.c = case_from_execution(exec, intervals[0].events(),
                              intervals[1].events());
  return out;
}

}  // namespace syncon::check
