// Seeded generator combinators for the conformance subsystem: everything a
// differential-testing campaign needs to sample — executions (via the
// sim/workload topologies), nonatomic event pairs, synchronization-condition
// ASTs, and fault schedules — as pure functions of a 64-bit seed, so every
// failing case is replayable from the seed alone.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "check/case.hpp"
#include "relations/evaluator.hpp"
#include "sim/faulty_channel.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"

namespace syncon::check {

/// Size envelope of generated cases. Defaults give "randomized large
/// universes" (up to ~500 events) while staying fast enough for thousands
/// of cases per minute.
struct GenLimits {
  WorkloadBounds workload;
  /// Interval sampling: X and Y each span up to this many processes…
  std::size_t max_interval_nodes = 6;
  /// …with up to this many contiguous events per spanned process.
  std::size_t max_events_per_node = 5;
};

/// Generates one case deterministically from its seed.
CheckCase generate_case(std::uint64_t case_seed, const GenLimits& limits = {});

/// A randomly generated synchronization condition: its concrete syntax plus
/// an independent oracle evaluation (direct recursion over the generating
/// AST, bypassing the parser) — the differential pair for the predicate
/// round-trip property.
struct ConditionCase {
  std::string text;
  std::function<bool(const RelationEvaluator&, EventHandle, EventHandle)>
      oracle;
};

/// Samples a condition AST of at most `max_depth` operator levels.
ConditionCase generate_condition(Xoshiro256StarStar& rng, int max_depth);

/// Samples a lossy-but-recoverable link fault configuration: drop, duplicate
/// and reorder rates in [0.05, 0.35] with a small delay window — heavy
/// enough to exercise every degraded-mode path, light enough that recovery
/// terminates quickly.
LinkFaultConfig generate_link_faults(Xoshiro256StarStar& rng);

}  // namespace syncon::check
