#include "check/properties.hpp"

#include <array>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "check/generators.hpp"
#include "cuts/watermark.hpp"
#include "explore/explorer.hpp"
#include "explore/invariants.hpp"
#include "model/compressed_clock.hpp"
#include "model/reachability.hpp"
#include "model/tree_clock.hpp"
#include "monitor/predicate.hpp"
#include "online/online_monitor.hpp"
#include "online/online_system.hpp"
#include "relations/batch.hpp"
#include "relations/evaluator.hpp"
#include "sim/faulty_channel.hpp"
#include "sim/interval_picker.hpp"
#include "store/durable.hpp"
#include "store/storage.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace syncon::check {

namespace {

PropertyResult pass() { return {}; }

PropertyResult fail(std::string message) {
  return {false, std::move(message)};
}

std::string describe(const EventId& e) {
  std::ostringstream os;
  os << e;
  return os.str();
}

/// Everything a relation-level property needs, built once per case. The
/// MaterializedCase keeps the Execution alive; Timestamps and the evaluator
/// reference it.
struct Instance {
  MaterializedCase m;
  Timestamps ts;
  RelationEvaluator eval;
  EventHandle hx, hy;

  explicit Instance(MaterializedCase mm)
      : m(std::move(mm)), ts(*m.exec), eval(ts) {
    hx = eval.add_event(m.x);
    hy = eval.add_event(m.y);
  }
};

std::unique_ptr<Instance> instantiate(const CheckCase& c) {
  std::optional<MaterializedCase> m = materialize(c);
  if (!m) return nullptr;
  return std::make_unique<Instance>(std::move(*m));
}

/// Universes small enough for the Θ(|E|²)-bit BFS-closure oracle.
bool oracle_sized(const Execution& exec) {
  return exec.total_real_count() <= 120;
}

/// The 64 verdicts (32 relations × both argument orders) of one instance —
/// the invariant payload of the metamorphic properties.
std::vector<bool> all_verdicts(const Instance& in) {
  std::vector<bool> v;
  v.reserve(64);
  for (const RelationId& id : all_relation_ids()) {
    v.push_back(in.eval.holds(id, in.hx, in.hy));
    v.push_back(in.eval.holds(id, in.hy, in.hx));
  }
  return v;
}

// ---------------------------------------------------------------------------
// fast_vs_naive / strict_vs_naive
// ---------------------------------------------------------------------------

PropertyResult differential_relations(const CheckCase& c, Semantics sem) {
  const std::unique_ptr<Instance> in = instantiate(c);
  if (!in) return fail("case failed to materialize");
  std::optional<ReachabilityOracle> oracle;
  if (oracle_sized(*in->m.exec)) oracle.emplace(*in->m.exec);

  const std::array<std::pair<EventHandle, EventHandle>, 2> orders{
      {{in->hx, in->hy}, {in->hy, in->hx}}};
  for (const RelationId& id : all_relation_ids()) {
    for (std::size_t o = 0; o < orders.size(); ++o) {
      const auto [a, b] = orders[o];
      QueryCost cost;
      const bool fast = sem == Semantics::Weak
                            ? in->eval.holds(id, a, b, &cost)
                            : in->eval.holds_strict(id, a, b, &cost);
      const bool naive = in->eval.holds_naive(id, a, b, sem);
      const std::string order = o == 0 ? "(X,Y)" : "(Y,X)";
      if (fast != naive) {
        return fail(to_string(id) + order + ": fast=" +
                    (fast ? "true" : "false") + " naive=" +
                    (naive ? "true" : "false"));
      }
      const NonatomicEvent& px = in->eval.proxy(a, id.proxy_x);
      const NonatomicEvent& py = in->eval.proxy(b, id.proxy_y);
      if (sem == Semantics::Weak) {
        // Theorem 20: the fast path must stay within its comparison budget.
        const std::uint64_t bound =
            theorem20_bound(id.relation, px.node_count(), py.node_count());
        if (cost.integer_comparisons > bound) {
          return fail(to_string(id) + order + ": cost " +
                      std::to_string(cost.integer_comparisons) +
                      " exceeds Theorem 20 bound " + std::to_string(bound));
        }
      }
      if (oracle) {
        const bool ground =
            evaluate_oracle(id.relation, px, py, *oracle, sem);
        if (ground != fast) {
          return fail(to_string(id) + order + ": fast=" +
                      (fast ? "true" : "false") + " but BFS oracle=" +
                      (ground ? "true" : "false"));
        }
      }
    }
  }
  return pass();
}

PropertyResult fast_vs_naive(const CheckCase& c) {
  return differential_relations(c, Semantics::Weak);
}

PropertyResult strict_vs_naive(const CheckCase& c) {
  return differential_relations(c, Semantics::Strict);
}

// ---------------------------------------------------------------------------
// timestamp_ll_forms
// ---------------------------------------------------------------------------

PropertyResult timestamp_ll_forms(const CheckCase& c) {
  std::optional<MaterializedCase> m = materialize(c);
  if (!m) return fail("case failed to materialize");
  const Execution& exec = *m->exec;
  const Timestamps ts(exec);
  const EventCuts cx(ts, m->x);
  const EventCuts cy(ts, m->y);

  constexpr std::array<PosetCut, 4> kAllCuts = {
      PosetCut::IntersectPast, PosetCut::UnionPast, PosetCut::IntersectFuture,
      PosetCut::UnionFuture};
  std::vector<Cut> every;
  std::vector<Cut> down_style;  // the cuts the theory applies << to as C
  for (const EventCuts* ec : {&cx, &cy}) {
    for (const PosetCut which : kAllCuts) every.push_back(ec->cut(which));
    down_style.push_back(ec->cut(PosetCut::IntersectPast));
    down_style.push_back(ec->cut(PosetCut::UnionPast));
  }

  // Theorem 19's canonical counts form vs the four definitional forms
  // (Defn 7.1–7.4) on every applicable pair.
  for (const Cut& cdown : down_style) {
    for (const Cut& cp : every) {
      const bool canon = ll(cdown, cp);
      if (canon != ll_form1(cdown, cp)) return fail("ll vs Defn 7.1");
      if (canon != !not_ll_form2(cdown, cp)) return fail("ll vs Defn 7.2");
      if (canon != ll_form3(cdown, cp)) return fail("ll vs Defn 7.3");
      if (canon != !not_ll_form4(cdown, cp)) return fail("ll vs Defn 7.4");
    }
  }

  // Theorem 19 probes on the sound probe sides (DESIGN.md §3.3b): the
  // R2'-shaped test probes N_Y, the R3-shaped test probes N_X, the
  // R4-shaped test may probe either side.
  struct Probe {
    const char* label;
    const VectorClock* down;
    const VectorClock* up;
    const std::vector<ProcessId>* nodes;
  };
  const std::array<Probe, 4> probes{{
      {"R2'-shape@N_Y", &cy.union_past(), &cx.union_future(),
       &m->y.node_set()},
      {"R3-shape@N_X", &cy.intersect_past(), &cx.intersect_future(),
       &m->x.node_set()},
      {"R4-shape@N_X", &cy.union_past(), &cx.intersect_future(),
       &m->x.node_set()},
      {"R4-shape@N_Y", &cy.union_past(), &cx.intersect_future(),
       &m->y.node_set()},
  }};
  for (const Probe& probe : probes) {
    const bool expected =
        !ll(Cut(exec, *probe.down), Cut(exec, *probe.up));
    ComparisonCounter counter;
    const bool probed =
        theorem19_violated(*probe.down, *probe.up, *probe.nodes, counter);
    if (probed != expected) {
      return fail(std::string(probe.label) + ": probe=" +
                  (probed ? "violated" : "ok") + " full-scan=" +
                  (expected ? "violated" : "ok"));
    }
    if (counter.integer_comparisons > probe.nodes->size()) {
      return fail(std::string(probe.label) + ": " +
                  std::to_string(counter.integer_comparisons) +
                  " comparisons for " + std::to_string(probe.nodes->size()) +
                  " probe nodes");
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// batch_parallel_identity
// ---------------------------------------------------------------------------

PropertyResult batch_parallel_identity(const CheckCase& c) {
  const std::unique_ptr<Instance> in = instantiate(c);
  if (!in) return fail("case failed to materialize");
  // Widen the universe a little so the sweep has real fan-out; the extra
  // intervals are a pure function of the case (fingerprint-seeded).
  Xoshiro256StarStar rng(fingerprint(c));
  IntervalSpec spec;
  spec.node_count = 2;
  spec.max_events_per_node = 3;
  for (NonatomicEvent& extra :
       random_intervals(*in->m.exec, rng, spec, 6)) {
    in->eval.add_event(std::move(extra));
  }

  ThreadPool pool(4);
  const BatchEvaluator serial(in->eval, nullptr);
  const BatchEvaluator parallel(in->eval, &pool);
  for (const bool pruned : {true, false}) {
    const BatchEvaluator::Result a = serial.all_pairs(pruned);
    const BatchEvaluator::Result b = parallel.all_pairs(pruned);
    const std::string which = pruned ? "pruned" : "unpruned";
    if (a.pairs.size() != b.pairs.size()) {
      return fail(which + ": pair counts differ");
    }
    for (std::size_t i = 0; i < a.pairs.size(); ++i) {
      const auto& pa = a.pairs[i];
      const auto& pb = b.pairs[i];
      if (pa.x != pb.x || pa.y != pb.y) {
        return fail(which + ": pair " + std::to_string(i) + " reordered");
      }
      if (pa.relations.holding != pb.relations.holding) {
        return fail(which + ": pair " + std::to_string(i) +
                    " holding sets differ");
      }
      if (pa.relations.evaluated != pb.relations.evaluated) {
        return fail(which + ": pair " + std::to_string(i) +
                    " evaluation counts differ");
      }
      if (!(pa.relations.cost == pb.relations.cost)) {
        return fail(which + ": pair " + std::to_string(i) +
                    " per-pair costs differ");
      }
    }
    if (!(a.cost == b.cost)) {
      return fail(which + ": merged cost totals differ");
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// monitor_faulty_vs_clean
// ---------------------------------------------------------------------------

struct Firing {
  bool holds = false;
  Confidence conf = Confidence::Definite;

  friend bool operator==(const Firing&, const Firing&) = default;
};

PropertyResult monitor_faulty_vs_clean(const CheckCase& c) {
  std::optional<MaterializedCase> m = materialize(c);
  if (!m) return fail("case failed to materialize");
  const Execution& exec = *m->exec;

  // Shared events go to X; Y keeps the rest. An empty remainder makes the
  // property vacuous (the monitor forbids two actions claiming one event).
  std::vector<EventId> y_only;
  for (const EventId& e : m->y.events()) {
    if (!m->x.contains(e)) y_only.push_back(e);
  }
  if (y_only.empty()) return pass();
  const std::set<EventId> x_set(m->x.events().begin(), m->x.events().end());
  const std::set<EventId> y_set(y_only.begin(), y_only.end());

  const OnlineSystem sys = replay(exec);
  const auto feed = [&](OnlineMonitor& mon, const WireMessage& report) {
    if (x_set.count(report.source)) {
      mon.ingest("X", report);
    } else if (y_set.count(report.source)) {
      mon.ingest("Y", report);
    } else {
      mon.observe(report);
    }
  };
  const auto verdicts_of = [&](OnlineMonitor& mon) {
    std::vector<Firing> fired;
    for (const RelationId& id : all_relation_ids()) {
      mon.watch(id, "X", "Y",
                [&fired](const std::string&, const std::string&, bool holds,
                         Confidence conf) { fired.push_back({holds, conf}); });
    }
    return fired;
  };

  // Clean feed: every report, in a topological order.
  OnlineMonitor clean(exec.process_count());
  clean.begin("X");
  clean.begin("Y");
  for (const EventId& e : exec.topological_order()) feed(clean, sys.wire_of(e));
  clean.complete("X");
  clean.complete("Y");
  const std::vector<Firing> clean_fires = verdicts_of(clean);

  // Faulty feed: the same reports through a seeded lossy channel, then
  // checkpoint + resync until every gap is closed, then complete.
  Xoshiro256StarStar frng(fingerprint(c) ^ 0x9e3779b97f4a7c15ULL);
  const LinkFaultConfig link = generate_link_faults(frng);
  FaultyChannel channel(link, fingerprint(c));
  TimePoint t = 0;
  for (const EventId& e : exec.topological_order()) {
    channel.push(sys.wire_of(e), t += 5);
  }
  OnlineMonitor faulty(exec.process_count());
  faulty.begin("X");
  faulty.begin("Y");
  for (const Arrival& a : channel.drain()) feed(faulty, a.message);
  faulty.checkpoint(sys.snapshot());
  int rounds = 0;
  while (!faulty.missing_reports().empty()) {
    if (++rounds > 64) return fail("resync failed to converge");
    for (const WireMessage& w : sys.serve(faulty.resync_request())) {
      feed(faulty, w);
    }
  }
  faulty.complete("X");
  faulty.complete("Y");
  const std::vector<Firing> faulty_fires = verdicts_of(faulty);

  if (clean_fires.size() != 32 || faulty_fires.size() != 32) {
    return fail("expected 32 immediate firings, got " +
                std::to_string(clean_fires.size()) + " clean / " +
                std::to_string(faulty_fires.size()) + " faulty");
  }
  const auto ids = all_relation_ids();
  for (std::size_t i = 0; i < 32; ++i) {
    if (faulty_fires[i].conf != Confidence::Definite) {
      return fail(to_string(ids[i]) + ": recovered verdict not Definite");
    }
    if (!(faulty_fires[i] == clean_fires[i])) {
      return fail(to_string(ids[i]) + ": faulty-vs-clean verdicts differ");
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// monitor_compaction_identity
// ---------------------------------------------------------------------------

PropertyResult monitor_compaction_identity(const CheckCase& c) {
  std::optional<MaterializedCase> m = materialize(c);
  if (!m) return fail("case failed to materialize");
  const Execution& exec = *m->exec;

  std::vector<EventId> y_only;
  for (const EventId& e : m->y.events()) {
    if (!m->x.contains(e)) y_only.push_back(e);
  }
  if (y_only.empty()) return pass();  // see monitor_faulty_vs_clean
  const std::set<EventId> x_set(m->x.events().begin(), m->x.events().end());
  const std::set<EventId> y_set(y_only.begin(), y_only.end());

  const auto feed = [&](OnlineMonitor& mon, const WireMessage& report) {
    if (x_set.count(report.source)) {
      mon.ingest("X", report);
    } else if (y_set.count(report.source)) {
      mon.ingest("Y", report);
    } else {
      mon.observe(report);
    }
  };
  const auto verdicts_of = [&](OnlineMonitor& mon) {
    std::vector<Firing> fired;
    for (const RelationId& id : all_relation_ids()) {
      mon.watch(id, "X", "Y",
                [&fired](const std::string&, const std::string&, bool holds,
                         Confidence conf) { fired.push_back({holds, conf}); });
    }
    return fired;
  };

  // Reference: clean feed into an uncompacted system's monitor.
  const OnlineSystem clean_sys = replay(exec);
  OnlineMonitor clean(exec.process_count());
  clean.begin("X");
  clean.begin("Y");
  for (const EventId& e : exec.topological_order()) {
    feed(clean, clean_sys.wire_of(e));
  }
  clean.complete("X");
  clean.complete("Y");
  const std::vector<Firing> clean_fires = verdicts_of(clean);

  // Subject: lossy feed, with the authoritative log compacted at the
  // monitor's watermark pin between delivery chunks. Chunked resync
  // (bounded request size) closes each chunk's gaps before compacting, so
  // every request is served from the live log.
  OnlineSystem sys = replay(exec);
  Xoshiro256StarStar frng(fingerprint(c) ^ 0xda3e39cb94b95bdbULL);
  const LinkFaultConfig link = generate_link_faults(frng);
  FaultyChannel channel(link, fingerprint(c) ^ 1);
  TimePoint t = 0;
  for (const EventId& e : exec.topological_order()) {
    channel.push(sys.wire_of(e), t += 5);
  }
  OnlineMonitor faulty(exec.process_count());
  faulty.begin("X");
  faulty.begin("Y");
  TimePoint cursor = 0;
  while (true) {
    cursor += 64;
    for (const Arrival& a : channel.pop_ready(cursor)) feed(faulty, a.message);
    faulty.checkpoint(sys.snapshot());
    int rounds = 0;
    while (faulty.missing_report_count() > 0) {
      if (++rounds > 512) return fail("chunked resync failed to converge");
      for (const WireMessage& w : sys.serve(faulty.resync_request(8))) {
        feed(faulty, w);
      }
    }
    const VectorClock pins[] = {faulty.watermark_pin()};
    sys.compact(low_watermark(pins));
    if (channel.in_transit() == 0) break;
  }
  faulty.complete("X");
  faulty.complete("Y");
  const std::vector<Firing> faulty_fires = verdicts_of(faulty);

  if (clean_fires.size() != 32 || faulty_fires.size() != 32) {
    return fail("expected 32 immediate firings, got " +
                std::to_string(clean_fires.size()) + " clean / " +
                std::to_string(faulty_fires.size()) + " compacted");
  }
  const auto ids = all_relation_ids();
  for (std::size_t i = 0; i < 32; ++i) {
    if (faulty_fires[i].conf != Confidence::Definite) {
      return fail(to_string(ids[i]) + ": compacted verdict not Definite");
    }
    if (!(faulty_fires[i] == clean_fires[i])) {
      return fail(to_string(ids[i]) +
                  ": compacted-vs-uncompacted verdicts differ");
    }
  }

  // When anything was reclaimed, a late-joining monitor must still converge:
  // its resync crosses the watermark and is answered from the checkpoint.
  if (sys.reclaimed_events() > 0) {
    OnlineMonitor late(exec.process_count());
    late.checkpoint(sys.snapshot());
    int rounds = 0;
    while (late.missing_report_count() > 0) {
      if (++rounds > 512) {
        return fail("late joiner failed to converge across the watermark");
      }
      for (const WireMessage& w : sys.serve(late.resync_request(8))) {
        late.observe(w);
      }
      late.adopt_checkpoint(sys.checkpoint());
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// recovery_identity
// ---------------------------------------------------------------------------

PropertyResult recovery_identity(const CheckCase& c) {
  std::optional<MaterializedCase> m = materialize(c);
  if (!m) return fail("case failed to materialize");
  const Execution& exec = *m->exec;
  const std::uint64_t fng = fingerprint(c);
  Xoshiro256StarStar rng(fng ^ 0xc2b2ae3d27d4eb4fULL);

  DurabilityPolicy policy;
  policy.sync_every = 1 + static_cast<std::uint32_t>(rng.below(4));
  policy.segment_records = 4 + static_cast<std::uint32_t>(rng.below(12));
  policy.snapshot_every = 1;
  policy.full_interval = 1 + static_cast<std::uint32_t>(rng.below(8));

  SimFaultConfig faults;
  faults.torn_tail = 0.5;
  faults.bit_flip = 0.05;
  faults.seed = fng;

  // System leg: journal every event into crash-faulty storage, crash at a
  // seeded point mid-drive, recover from snapshot + WAL tail, finish the
  // drive, and demand executed counts and every surviving clock
  // bit-identical to a replay that never crashed.
  {
    const OnlineSystem oracle = replay(exec);
    SimStorage storage(faults);
    auto sys = std::make_unique<DurableSystem>(exec.process_count(), storage,
                                               policy);
    std::set<EventId> is_source;
    for (const Message& msg : exec.messages()) is_source.insert(msg.source);
    const std::vector<EventId>& order = exec.topological_order();
    if (order.empty()) return pass();
    // Every event journals at least one storage op, so this always fires.
    storage.crash_after_ops(1 + rng.below(order.size()));
    const std::size_t compact_period = 3 + rng.below(6);
    bool crashed = false;
    std::size_t i = 0;
    while (i < order.size()) {
      const EventId e = order[i];
      try {
        if (e.index > sys->system().executed(e.process)) {
          const auto incoming = exec.incoming(e);
          if (!incoming.empty()) {
            std::vector<WireMessage> msgs;
            msgs.reserve(incoming.size());
            for (const EventId& src : incoming) {
              // A source is never reclaimed before its receive executes
              // (the retention watermark tracks receiver progress), so
              // the live log can always reconstruct the wire.
              msgs.push_back(sys->system().wire_of(src));
            }
            sys->deliver_all(e.process, msgs);
          } else if (is_source.count(e)) {
            sys->send(e.process);
          } else {
            sys->local(e.process);
          }
        }
        if ((i + 1) % compact_period == 0) {
          sys->compact(sys->system().retention_watermark());
        }
        ++i;
      } catch (const StorageCrash&) {
        if (crashed) return fail("simulated crash fired twice");
        crashed = true;
        sys = std::make_unique<DurableSystem>(exec.process_count(), storage,
                                              policy);
        // The crash may have lost an unsynced suffix of journaled events.
        // Rescan from the top: already-recovered events are skipped by the
        // executed() guard, lost ones are re-driven.
        i = 0;
      }
    }
    if (!crashed) return fail("seeded crash point never reached");
    for (ProcessId p = 0; p < exec.process_count(); ++p) {
      if (sys->system().executed(p) != oracle.executed(p)) {
        return fail("process " + std::to_string(p) +
                    ": executed count diverged after recovery (" +
                    std::to_string(sys->system().executed(p)) + " vs " +
                    std::to_string(oracle.executed(p)) + ")");
      }
      if (!(sys->system().current_clock(p) == oracle.current_clock(p))) {
        return fail("process " + std::to_string(p) +
                    ": surface clock diverged after recovery");
      }
      for (EventIndex j = sys->system().reclaimed_before(p) + 1;
           j <= sys->system().executed(p); ++j) {
        const EventId live{p, j};
        if (!(sys->system().clock_of(live) == oracle.clock_of(live))) {
          return fail(describe(live) + ": live clock diverged after recovery");
        }
      }
    }
  }

  // Monitor leg: the lossy-channel differential of monitor_faulty_vs_clean
  // with a seeded crash added. The DurableMonitor is killed mid-feed (or
  // mid-resync / mid-complete), recovered from its own snapshot + WAL tail,
  // and resynced until every gap closes; all 32 relation verdicts must be
  // Definite and bit-identical to a clean never-crashed monitor.
  std::vector<EventId> y_only;
  for (const EventId& e : m->y.events()) {
    if (!m->x.contains(e)) y_only.push_back(e);
  }
  if (y_only.empty()) return pass();  // see monitor_faulty_vs_clean
  const std::set<EventId> x_set(m->x.events().begin(), m->x.events().end());
  const std::set<EventId> y_set(y_only.begin(), y_only.end());

  const OnlineSystem sys = replay(exec);
  const auto verdicts_of = [&](OnlineMonitor& mon) {
    std::vector<Firing> fired;
    for (const RelationId& id : all_relation_ids()) {
      mon.watch(id, "X", "Y",
                [&fired](const std::string&, const std::string&, bool holds,
                         Confidence conf) { fired.push_back({holds, conf}); });
    }
    return fired;
  };

  OnlineMonitor clean(exec.process_count());
  clean.begin("X");
  clean.begin("Y");
  for (const EventId& e : exec.topological_order()) {
    const WireMessage w = sys.wire_of(e);
    if (x_set.count(e)) {
      clean.ingest("X", w);
    } else if (y_set.count(e)) {
      clean.ingest("Y", w);
    } else {
      clean.observe(w);
    }
  }
  clean.complete("X");
  clean.complete("Y");
  const std::vector<Firing> clean_fires = verdicts_of(clean);

  Xoshiro256StarStar frng(fng ^ 0x9e3779b97f4a7c15ULL);
  const LinkFaultConfig link = generate_link_faults(frng);
  FaultyChannel channel(link, fng ^ 2);
  TimePoint t = 0;
  for (const EventId& e : exec.topological_order()) {
    channel.push(sys.wire_of(e), t += 5);
  }
  const std::vector<Arrival> arrivals = channel.drain();

  SimFaultConfig mfaults = faults;
  mfaults.seed = fng ^ 0x5bf0363577e53b95ULL;
  SimStorage mstorage(mfaults);
  auto mon = std::make_unique<DurableMonitor>(exec.process_count(), mstorage,
                                              policy);
  bool mcrashed = false;
  const auto ensure_begun = [&] {
    for (const char* label : {"X", "Y"}) {
      // A begin record lost with the unsynced WAL suffix must be re-issued;
      // an action whose completion survived must not be re-opened.
      if (!mon->monitor().is_open(label) &&
          mon->monitor().summary(label) == nullptr) {
        mon->begin(label);
      }
    }
  };
  const auto recover = [&] {
    mon = std::make_unique<DurableMonitor>(exec.process_count(), mstorage,
                                           policy);
    ensure_begun();
  };
  const auto feed = [&](const WireMessage& report) {
    if (x_set.count(report.source)) {
      mon->ingest("X", report);
    } else if (y_set.count(report.source)) {
      mon->ingest("Y", report);
    } else {
      mon->observe(report);
    }
  };
  const auto guarded = [&](const auto& fn) -> bool {
    try {
      fn();
    } catch (const StorageCrash&) {
      if (mcrashed) return false;
      mcrashed = true;
      recover();
      fn();  // the crash is disarmed; the retried unit is idempotent
    }
    return true;
  };

  // Each feed does at least one storage op, so the crash fires within the
  // run (begins / feeds / resync / completes all count ops).
  mstorage.crash_after_ops(1 + rng.below(arrivals.size() + 4));
  if (!guarded(ensure_begun)) return fail("simulated crash fired twice");
  for (const Arrival& a : arrivals) {
    if (!guarded([&] { feed(a.message); })) {
      return fail("simulated crash fired twice");
    }
  }
  // Converge: checkpoint inside the loop so a crash that loses the
  // checkpoint record (or tail reports) reopens the gaps next round.
  bool need_round = true;
  int rounds = 0;
  while (need_round || mon->monitor().missing_report_count() > 0) {
    if (++rounds > 512) return fail("post-crash resync failed to converge");
    need_round = false;
    const bool ok = guarded([&] {
      mon->checkpoint(sys.snapshot());
      for (const WireMessage& w :
           sys.serve(mon->monitor().resync_request(8))) {
        feed(w);
      }
    });
    if (!ok) return fail("simulated crash fired twice");
  }
  const auto complete_one = [&](const char* label) {
    return guarded([&] {
      if (mon->monitor().is_open(label)) mon->complete(label);
    });
  };
  if (!complete_one("X") || !complete_one("Y")) {
    return fail("simulated crash fired twice");
  }
  // If the crash hit during completion and tore off trailing reports, the
  // reopened gaps must be closed before reading verdicts.
  rounds = 0;
  while (mon->monitor().missing_report_count() > 0) {
    if (++rounds > 512) return fail("post-complete resync failed to converge");
    mon->checkpoint(sys.snapshot());
    for (const WireMessage& w : sys.serve(mon->monitor().resync_request(8))) {
      feed(w);
    }
  }
  const std::vector<Firing> crash_fires = verdicts_of(mon->monitor());

  if (clean_fires.size() != 32 || crash_fires.size() != 32) {
    return fail("expected 32 immediate firings, got " +
                std::to_string(clean_fires.size()) + " clean / " +
                std::to_string(crash_fires.size()) + " recovered");
  }
  const auto ids = all_relation_ids();
  for (std::size_t i = 0; i < 32; ++i) {
    if (crash_fires[i].conf != Confidence::Definite) {
      return fail(to_string(ids[i]) + ": recovered verdict not Definite");
    }
    if (!(crash_fires[i] == clean_fires[i])) {
      return fail(to_string(ids[i]) + ": recovered-vs-clean verdicts differ");
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// metamorphic_redundant_message
// ---------------------------------------------------------------------------

PropertyResult metamorphic_redundant_message(const CheckCase& c) {
  const std::unique_ptr<Instance> base = instantiate(c);
  if (!base) return fail("case failed to materialize");

  // First causally ordered cross-process pair (in id order) not already a
  // message edge: a new e→f message is redundant by construction.
  std::optional<Message> redundant;
  const std::set<Message, decltype([](const Message& a, const Message& b) {
    return std::pair(a.source, a.target) < std::pair(b.source, b.target);
  })>
      present(c.messages.begin(), c.messages.end());
  const Execution& exec = *base->m.exec;
  for (ProcessId p = 0; p < exec.process_count() && !redundant; ++p) {
    for (EventIndex i = 1; i <= exec.real_count(p) && !redundant; ++i) {
      for (ProcessId q = 0; q < exec.process_count() && !redundant; ++q) {
        if (q == p) continue;
        for (EventIndex j = 1; j <= exec.real_count(q); ++j) {
          const Message cand{EventId{p, i}, EventId{q, j}};
          if (base->ts.lt(cand.source, cand.target) &&
              !present.count(cand)) {
            redundant = cand;
            break;
          }
        }
      }
    }
  }
  if (!redundant) return pass();  // no causal cross-process pair to add

  CheckCase augmented = c;
  augmented.messages.push_back(*redundant);
  const std::unique_ptr<Instance> aug = instantiate(augmented);
  if (!aug) {
    return fail("adding redundant message " + describe(redundant->source) +
                "->" + describe(redundant->target) +
                " broke materialization");
  }
  if (all_verdicts(*base) != all_verdicts(*aug)) {
    return fail("redundant message " + describe(redundant->source) + "->" +
                describe(redundant->target) + " changed a verdict");
  }
  return pass();
}

// ---------------------------------------------------------------------------
// metamorphic_relabel
// ---------------------------------------------------------------------------

PropertyResult metamorphic_relabel(const CheckCase& c) {
  const std::unique_ptr<Instance> base = instantiate(c);
  if (!base) return fail("case failed to materialize");

  const std::size_t n = c.process_count();
  std::vector<ProcessId> perm(n);
  std::iota(perm.begin(), perm.end(), ProcessId{0});
  Xoshiro256StarStar rng(fingerprint(c));
  for (std::size_t i = n; i-- > 1;) {
    std::swap(perm[i], perm[rng.below(i + 1)]);
  }

  CheckCase relabeled;
  relabeled.events_per_process.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    relabeled.events_per_process[perm[p]] = c.events_per_process[p];
  }
  const auto remap = [&perm](EventId e) {
    return EventId{perm[e.process], e.index};
  };
  for (const Message& msg : c.messages) {
    relabeled.messages.push_back({remap(msg.source), remap(msg.target)});
  }
  for (const EventId& e : c.x_members) relabeled.x_members.push_back(remap(e));
  for (const EventId& e : c.y_members) relabeled.y_members.push_back(remap(e));

  const std::unique_ptr<Instance> moved = instantiate(relabeled);
  if (!moved) return fail("relabeled case failed to materialize");
  if (all_verdicts(*base) != all_verdicts(*moved)) {
    return fail("process relabeling changed a verdict");
  }
  return pass();
}

// ---------------------------------------------------------------------------
// predicate_roundtrip
// ---------------------------------------------------------------------------

PropertyResult predicate_roundtrip(const CheckCase& c) {
  const std::unique_ptr<Instance> in = instantiate(c);
  if (!in) return fail("case failed to materialize");
  Xoshiro256StarStar rng(fingerprint(c));
  const std::array<std::pair<EventHandle, EventHandle>, 2> orders{
      {{in->hx, in->hy}, {in->hy, in->hx}}};
  for (int i = 0; i < 20; ++i) {
    const ConditionCase cc = generate_condition(rng, 3);
    try {
      const SyncCondition parsed = SyncCondition::parse(cc.text);
      const SyncCondition reparsed = SyncCondition::parse(parsed.to_string());
      for (const auto& [a, b] : orders) {
        const bool expected = cc.oracle(in->eval, a, b);
        if (parsed.evaluate(in->eval, a, b) != expected) {
          return fail("parse/evaluate mismatch on: " + cc.text);
        }
        if (reparsed.evaluate(in->eval, a, b) != expected) {
          return fail("to_string round-trip mismatch on: " + cc.text);
        }
      }
    } catch (const ConditionParseError& err) {
      return fail("generated condition failed to parse: " + cc.text + " (" +
                  err.what() + ")");
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// clock_backend_identity
// ---------------------------------------------------------------------------

PropertyResult clock_backend_identity(const CheckCase& c) {
  std::optional<MaterializedCase> m = materialize(c);
  if (!m) return fail("case failed to materialize");
  const Execution& exec = *m->exec;
  const BasicTimestamps<VectorClock> dense(exec);
  const BasicTimestamps<TreeClock> tree(exec);
  const BasicTimestamps<CompressedClock> comp(exec);

  // Stamped clocks densify bit-identically across backends, forward and
  // reverse, for every real event.
  for (const EventId& e : exec.topological_order()) {
    if (tree.forward_ref(e).to_dense() != dense.forward_ref(e) ||
        comp.forward_ref(e).to_dense() != dense.forward_ref(e)) {
      return fail("forward clock of " + describe(e) +
                  " differs across clock backends");
    }
    if (tree.reverse(e).to_dense() != dense.reverse(e) ||
        comp.reverse(e).to_dense() != dense.reverse(e)) {
      return fail("reverse clock of " + describe(e) +
                  " differs across clock backends");
    }
  }

  // C1–C4 cut timestamps of X and Y densify identically.
  const BasicEventCuts<VectorClock> cx_d(dense, m->x), cy_d(dense, m->y);
  const BasicEventCuts<TreeClock> cx_t(tree, m->x), cy_t(tree, m->y);
  const BasicEventCuts<CompressedClock> cx_c(comp, m->x), cy_c(comp, m->y);
  for (const PosetCut which :
       {PosetCut::IntersectPast, PosetCut::UnionPast,
        PosetCut::IntersectFuture, PosetCut::UnionFuture}) {
    if (cx_t.counts(which).to_dense() != cx_d.counts(which) ||
        cx_c.counts(which).to_dense() != cx_d.counts(which) ||
        cy_t.counts(which).to_dense() != cy_d.counts(which) ||
        cy_c.counts(which).to_dense() != cy_d.counts(which)) {
      return fail(std::string(to_string(which)) +
                  " differs across clock backends");
    }
  }

  // The Theorem 19/20 evaluator returns the same verdict at the same
  // comparison cost on every backend, both argument orders.
  constexpr std::array<Relation, 8> kRelations{
      Relation::R1,  Relation::R1p, Relation::R2, Relation::R2p,
      Relation::R3,  Relation::R3p, Relation::R4, Relation::R4p};
  for (const Relation r : kRelations) {
    ComparisonCounter nd, nt, nc;
    const bool xy_d = evaluate_fast(r, cx_d, cy_d, nd);
    const bool xy_t = evaluate_fast(r, cx_t, cy_t, nt);
    const bool xy_c = evaluate_fast(r, cx_c, cy_c, nc);
    if (xy_t != xy_d || xy_c != xy_d) {
      return fail(std::string("R(X,Y) verdict for ") + to_string(r) +
                  " differs across clock backends");
    }
    if (nt != nd || nc != nd) {
      return fail(std::string("R(X,Y) probe cost for ") + to_string(r) +
                  " differs across clock backends");
    }
    nd.reset(); nt.reset(); nc.reset();
    const bool yx_d = evaluate_fast(r, cy_d, cx_d, nd);
    const bool yx_t = evaluate_fast(r, cy_t, cx_t, nt);
    const bool yx_c = evaluate_fast(r, cy_c, cx_c, nc);
    if (yx_t != yx_d || yx_c != yx_d || nt != nd || nc != nd) {
      return fail(std::string("R(Y,X) for ") + to_string(r) +
                  " differs across clock backends");
    }
  }
  return pass();
}

// ---------------------------------------------------------------------------
// schedule_invariance
// ---------------------------------------------------------------------------

PropertyResult schedule_invariance(const CheckCase& c) {
  // Exhaustive enumeration only pays on small universes; larger cases pass
  // vacuously — the sampled properties cover them, and the explorer CLI
  // exists for bigger budgets.
  const ScheduleInvarianceConfig& cfg = schedule_invariance_config();
  if (c.process_count() > cfg.max_processes ||
      c.messages.size() > cfg.max_messages ||
      c.total_events() > cfg.max_events) {
    return pass();
  }
  std::optional<MaterializedCase> m = materialize(c);
  if (!m) return fail("case failed to materialize");
  const explore::Universe u = explore::universe_from_execution(*m->exec);

  explore::InvariantOptions inv;
  inv.mask = explore::kInvCore;
  inv.fault_seed = fingerprint(c);
  explore::ExploreOptions opt;
  opt.max_schedules = cfg.max_schedules;

  std::string violation;
  const explore::ExploreStats stats =
      explore::explore(u, opt, [&](const explore::Schedule& s) {
        const explore::ScheduleCheckResult r =
            explore::check_schedule(u, s, c.x_members, c.y_members, inv);
        if (!r.passed) {
          violation = r.message;
          return false;
        }
        return true;
      });
  if (!violation.empty()) {
    return fail("schedule " + std::to_string(stats.traces_visited) +
                " of the universe violates: " + violation);
  }
  return pass();
}

constexpr std::array<PropertyInfo, 12> kProperties{{
    {"fast_vs_naive",
     "Theorem 20 fast conditions vs naive proxy quantification (and the BFS "
     "oracle on small universes) for all 32 relations, with cost bounds",
     &fast_vs_naive},
    {"strict_vs_naive",
     "strict (≺) dispatch vs naive strict semantics for all 32 "
     "relations",
     &strict_vs_naive},
    {"timestamp_ll_forms",
     "canonical << test vs Defn 7.1-7.4 and the Theorem 19 probe on sound "
     "probe sides",
     &timestamp_ll_forms},
    {"batch_parallel_identity",
     "serial vs thread-pool BatchEvaluator sweeps: bit-identical holding "
     "sets and exact cost totals",
     &batch_parallel_identity},
    {"monitor_faulty_vs_clean",
     "online monitor behind a seeded lossy channel + recovery vs a clean "
     "feed: identical Definite verdicts",
     &monitor_faulty_vs_clean},
    {"monitor_compaction_identity",
     "online monitor over a lossy feed with the log compacted at the "
     "watermark pin vs a clean uncompacted run: identical Definite "
     "verdicts, late joiner converges via the checkpoint",
     &monitor_compaction_identity},
    {"metamorphic_redundant_message",
     "adding a causally redundant message changes no verdict",
     &metamorphic_redundant_message},
    {"metamorphic_relabel",
     "relabeling processes preserves all verdicts",
     &metamorphic_relabel},
    {"predicate_roundtrip",
     "random sync-condition ASTs render -> parse -> evaluate identically to "
     "direct AST evaluation",
     &predicate_roundtrip},
    {"clock_backend_identity",
     "dense, tree and compressed clock backends stamp, cut and decide all "
     "relations bit-identically after densification, at equal probe cost",
     &clock_backend_identity},
    {"recovery_identity",
     "crash the durable system and monitor at a seeded point under storage "
     "faults, recover from snapshot + WAL tail, and require clocks and all "
     "32 verdicts bit-identical to an uninterrupted run",
     &recovery_identity},
    {"schedule_invariance",
     "small universes: enumerate every inequivalent delivery schedule "
     "(DPOR) and run the core invariant battery on each poset — fast vs "
     "naive, schedule-driven online clocks vs offline, monitor vs offline, "
     "verdict stability across linearizations of one trace",
     &schedule_invariance},
}};

}  // namespace

std::span<const PropertyInfo> all_properties() { return kProperties; }

ScheduleInvarianceConfig& schedule_invariance_config() {
  static ScheduleInvarianceConfig config;
  return config;
}

const PropertyInfo* find_property(std::string_view name) {
  for (const PropertyInfo& info : kProperties) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

}  // namespace syncon::check
