#include "check/shrink.hpp"

#include <algorithm>
#include <utility>

#include "support/contracts.hpp"

namespace syncon::check {

namespace {

class Shrinker {
 public:
  Shrinker(CheckCase best, const CaseProperty& property,
           const ShrinkOptions& options)
      : best_(std::move(best)), property_(property), options_(options) {}

  CheckCase run() {
    bool progress = true;
    while (progress && stats_.rounds < options_.max_rounds && !exhausted()) {
      progress = false;
      progress |= shrink_processes();
      progress |= shrink_chains();
      progress |= shrink_messages();
      progress |= shrink_members(/*x_side=*/true);
      progress |= shrink_members(/*x_side=*/false);
      progress |= shrink_compact();
      ++stats_.rounds;
    }
    return best_;
  }

  const ShrinkStats& stats() const { return stats_; }

 private:
  bool exhausted() const {
    return stats_.evaluations >= options_.max_evaluations;
  }

  /// True iff the candidate is well-formed AND still fails the property.
  bool still_fails(const CheckCase& candidate) {
    if (exhausted()) return false;
    if (!candidate.structurally_valid()) return false;
    if (!materialize(candidate)) return false;
    ++stats_.evaluations;
    return !property_(candidate).passed;
  }

  bool accept_if_fails(CheckCase candidate) {
    if (!still_fails(candidate)) return false;
    best_ = std::move(candidate);
    ++stats_.accepted;
    return true;
  }

  // --- axis 1: drop whole processes ----------------------------------------

  static void remap_after_drop(std::vector<EventId>& events, ProcessId gone) {
    std::erase_if(events, [gone](const EventId& e) { return e.process == gone; });
    for (EventId& e : events) {
      if (e.process > gone) --e.process;
    }
  }

  static CheckCase drop_process(const CheckCase& c, ProcessId gone) {
    CheckCase out = c;
    out.events_per_process.erase(out.events_per_process.begin() + gone);
    std::erase_if(out.messages, [gone](const Message& m) {
      return m.source.process == gone || m.target.process == gone;
    });
    for (Message& m : out.messages) {
      if (m.source.process > gone) --m.source.process;
      if (m.target.process > gone) --m.target.process;
    }
    remap_after_drop(out.x_members, gone);
    remap_after_drop(out.y_members, gone);
    return out;
  }

  bool shrink_processes() {
    bool changed = false;
    // Scan high → low so accepted drops do not invalidate lower indices.
    for (ProcessId p = static_cast<ProcessId>(best_.process_count()); p-- > 0;) {
      if (best_.process_count() <= 1) break;
      if (accept_if_fails(drop_process(best_, p))) changed = true;
    }
    return changed;
  }

  // --- axis 2: truncate per-process chains ---------------------------------

  static CheckCase truncate(const CheckCase& c, ProcessId p,
                            EventIndex new_count) {
    CheckCase out = c;
    out.events_per_process[p] = new_count;
    const auto beyond = [p, new_count](const EventId& e) {
      return e.process == p && e.index > new_count;
    };
    std::erase_if(out.messages, [&](const Message& m) {
      return beyond(m.source) || beyond(m.target);
    });
    std::erase_if(out.x_members, beyond);
    std::erase_if(out.y_members, beyond);
    return out;
  }

  bool shrink_chains() {
    bool changed = false;
    for (ProcessId p = 0; p < best_.process_count(); ++p) {
      // Aggressive halving first, then single-step trims.
      while (best_.events_per_process[p] > 0) {
        const EventIndex half = best_.events_per_process[p] / 2;
        if (!accept_if_fails(truncate(best_, p, half))) break;
        changed = true;
      }
      while (best_.events_per_process[p] > 0) {
        const EventIndex one_less = best_.events_per_process[p] - 1;
        if (!accept_if_fails(truncate(best_, p, one_less))) break;
        changed = true;
      }
    }
    return changed;
  }

  // --- axes 3 & 4: chunked ddmin over a sequence ---------------------------

  /// Classic ddmin sweep: try deleting windows of halving size from the
  /// sequence selected by `get`, keeping deletions that preserve failure.
  template <typename Get>
  bool ddmin_sequence(Get get, std::size_t keep_at_least) {
    bool changed = false;
    std::size_t chunk = std::max<std::size_t>(get(best_).size() / 2, 1);
    while (chunk >= 1 && !exhausted()) {
      std::size_t i = 0;
      while (i < get(best_).size()) {
        const std::size_t n = get(best_).size();
        if (n <= keep_at_least) break;
        const std::size_t len = std::min(chunk, n - i);
        if (n - len < keep_at_least) {
          ++i;
          continue;
        }
        CheckCase candidate = best_;
        auto& seq = get(candidate);
        seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(i),
                  seq.begin() + static_cast<std::ptrdiff_t>(i + len));
        if (accept_if_fails(std::move(candidate))) {
          changed = true;  // deleted: same i now names the next window
        } else {
          i += len;
        }
      }
      chunk /= 2;
    }
    return changed;
  }

  bool shrink_messages() {
    return ddmin_sequence(
        [](CheckCase& c) -> std::vector<Message>& { return c.messages; }, 0);
  }

  // --- axis 5: squeeze out unreferenced interior events --------------------
  // Chain truncation cannot pass below the highest member/message index on a
  // process; this axis deletes the filler events BETWEEN references and
  // renumbers, so a member like p:21 can end up as p:1.

  static bool referenced(const CheckCase& c, ProcessId p, EventIndex i) {
    const auto hits = [p, i](const EventId& e) {
      return e.process == p && e.index == i;
    };
    return std::any_of(c.x_members.begin(), c.x_members.end(), hits) ||
           std::any_of(c.y_members.begin(), c.y_members.end(), hits) ||
           std::any_of(c.messages.begin(), c.messages.end(),
                       [&hits](const Message& m) {
                         return hits(m.source) || hits(m.target);
                       });
  }

  /// Removes event (p, i), shifting higher indices on p down by one.
  static CheckCase remove_event(const CheckCase& c, ProcessId p,
                                EventIndex i) {
    CheckCase out = c;
    --out.events_per_process[p];
    const auto shift = [p, i](EventId& e) {
      if (e.process == p && e.index > i) --e.index;
    };
    for (Message& m : out.messages) {
      shift(m.source);
      shift(m.target);
    }
    for (EventId& e : out.x_members) shift(e);
    for (EventId& e : out.y_members) shift(e);
    return out;
  }

  bool shrink_compact() {
    bool changed = false;
    for (ProcessId p = 0; p < best_.process_count(); ++p) {
      // All of p's unreferenced filler at once, then event by event.
      CheckCase bulk = best_;
      for (EventIndex i = best_.events_per_process[p]; i >= 1; --i) {
        if (!referenced(bulk, p, i)) bulk = remove_event(bulk, p, i);
      }
      if (bulk.events_per_process[p] != best_.events_per_process[p] &&
          accept_if_fails(std::move(bulk))) {
        changed = true;
        continue;
      }
      for (EventIndex i = best_.events_per_process[p]; i >= 1; --i) {
        if (referenced(best_, p, i)) continue;
        if (accept_if_fails(remove_event(best_, p, i))) changed = true;
      }
    }
    return changed;
  }

  bool shrink_members(bool x_side) {
    return ddmin_sequence(
        [x_side](CheckCase& c) -> std::vector<EventId>& {
          return x_side ? c.x_members : c.y_members;
        },
        1);
  }

  CheckCase best_;
  const CaseProperty& property_;
  ShrinkOptions options_;
  ShrinkStats stats_;
};

}  // namespace

CheckCase shrink_case(const CheckCase& failing, const CaseProperty& property,
                      ShrinkStats* stats, const ShrinkOptions& options) {
  SYNCON_REQUIRE(failing.structurally_valid() && materialize(failing),
                 "shrink_case: input case must be well-formed");
  SYNCON_REQUIRE(!property(failing).passed,
                 "shrink_case: property must fail on the input case");
  Shrinker shrinker(failing, property, options);
  CheckCase minimized = shrinker.run();
  if (stats) *stats = shrinker.stats();
  return minimized;
}

}  // namespace syncon::check
