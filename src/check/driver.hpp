// The conformance driver: generate cases from a master seed, run the named
// cross-layer properties on each, shrink every failure to a minimal
// replayable repro. Fully deterministic given (seed, max_cases): the
// optional wall-clock budget only decides when generation STOPS, never what
// any case contains or how a property judges it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/case.hpp"
#include "check/generators.hpp"
#include "check/properties.hpp"
#include "check/shrink.hpp"

namespace syncon::check {

struct DriverOptions {
  std::uint64_t seed = 1;
  /// Cases to generate; 0 means unlimited (bounded by the time budget).
  std::size_t max_cases = 200;
  /// Wall-clock budget in seconds; 0 means no time limit.
  double budget_seconds = 0.0;
  /// Property names to run; empty means all registered properties.
  std::vector<std::string> properties;
  GenLimits limits;
  bool shrink_failures = true;
  ShrinkOptions shrink;
  /// Stop after this many failures; 0 means collect them all.
  std::size_t stop_after_failures = 1;
  /// Exhaustive mode: force schedule_invariance into the property set (when
  /// a property filter is given) and lift its schedule budget for the run,
  /// so every case under the size gate gets full enumeration instead of the
  /// default bounded walk. The budget is restored when the run ends.
  bool exhaustive = false;
};

struct FailureReport {
  std::string property;
  std::uint64_t case_seed = 0;
  std::size_t case_index = 0;
  /// The failing property's message (which relation/cut/verdict diverged).
  std::string detail;
  CheckCase original;
  CheckCase minimized;  ///< == original when shrinking was disabled
  ShrinkStats shrink_stats;
  /// Self-contained replayable repro of the minimized case (trace_io form).
  std::string repro;
};

struct DriverReport {
  std::size_t cases_run = 0;
  std::size_t property_runs = 0;
  std::vector<FailureReport> failures;

  bool ok() const { return failures.empty(); }
};

/// The i-th case seed of a campaign: the (i+1)-th output of the SplitMix64
/// stream seeded with the master seed, computable in O(1) for any index.
std::uint64_t case_seed_for(std::uint64_t master_seed, std::size_t index);

/// Runs one property on one case, converting any escaped exception (e.g. a
/// ContractViolation out of the library under test) into a failed result —
/// a crash IS a conformance failure, and this keeps the shrinker's
/// predicate total.
PropertyResult run_property_on_case(const PropertyInfo& property,
                                    const CheckCase& c);

/// Runs the campaign. When `log` is non-null, progress and failure details
/// are streamed to it as they happen. Unknown property names are a contract
/// violation.
DriverReport run_conformance(const DriverOptions& options,
                             std::ostream* log = nullptr);

}  // namespace syncon::check
