// Named cross-layer conformance properties — the differential claims the
// whole repository rests on, each one a deterministic pure function of a
// CheckCase (auxiliary randomness is seeded from the case fingerprint, so
// shrinking re-runs always agree):
//
//   fast_vs_naive       Theorem 20 conditions vs the |N_X|·|N_Y| proxy
//                       quantification (and, on small universes, the BFS
//                       closure oracle) for all 32 relations + cost bounds.
//   strict_vs_naive     the strict (≺) dispatch vs naive strict semantics.
//   timestamp_ll_forms  Theorem 19's cut-timestamp ≪ test vs the four
//                       definitional forms of Defn 7.1–7.4, plus the sound
//                       probe-side checks.
//   batch_parallel_identity   serial vs thread-pool BatchEvaluator sweeps:
//                       bit-identical holding sets and exact cost totals.
//   monitor_faulty_vs_clean   OnlineMonitor fed through a seeded lossy
//                       channel + recovery vs a clean feed: identical
//                       verdicts, all Definite.
//   monitor_compaction_identity   the same differential with the
//                       authoritative log compacted at the monitor's
//                       watermark pin between delivery chunks, plus a
//                       late joiner resynced across the watermark from
//                       the retention checkpoint.
//   metamorphic_redundant_message   adding a causally redundant message
//                       never changes any verdict.
//   metamorphic_relabel relabeling processes permutes but preserves
//                       verdicts.
//   predicate_roundtrip random sync-condition ASTs render → parse →
//                       evaluate identically to direct AST evaluation.
//   clock_backend_identity   dense, tree and compressed clock backends
//                       stamp, cut and decide all relations
//                       bit-identically, at equal probe cost.
//   recovery_identity   DurableSystem/DurableMonitor crashed at a seeded
//                       point under storage faults and recovered from
//                       snapshot + WAL tail: clocks and all 32 verdicts
//                       bit-identical to an uninterrupted run.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "check/case.hpp"

namespace syncon::check {

struct PropertyResult {
  bool passed = true;
  /// On failure: which relation/cut/verdict diverged, for the repro header.
  std::string message;
};

using PropertyFn = PropertyResult (*)(const CheckCase&);

struct PropertyInfo {
  std::string_view name;
  std::string_view description;
  PropertyFn fn;
};

/// All registered properties, in documentation order.
std::span<const PropertyInfo> all_properties();

/// Lookup by name; nullptr when unknown.
const PropertyInfo* find_property(std::string_view name);

}  // namespace syncon::check
