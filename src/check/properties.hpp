// Named cross-layer conformance properties — the differential claims the
// whole repository rests on, each one a deterministic pure function of a
// CheckCase (auxiliary randomness is seeded from the case fingerprint, so
// shrinking re-runs always agree):
//
//   fast_vs_naive       Theorem 20 conditions vs the |N_X|·|N_Y| proxy
//                       quantification (and, on small universes, the BFS
//                       closure oracle) for all 32 relations + cost bounds.
//   strict_vs_naive     the strict (≺) dispatch vs naive strict semantics.
//   timestamp_ll_forms  Theorem 19's cut-timestamp ≪ test vs the four
//                       definitional forms of Defn 7.1–7.4, plus the sound
//                       probe-side checks.
//   batch_parallel_identity   serial vs thread-pool BatchEvaluator sweeps:
//                       bit-identical holding sets and exact cost totals.
//   monitor_faulty_vs_clean   OnlineMonitor fed through a seeded lossy
//                       channel + recovery vs a clean feed: identical
//                       verdicts, all Definite.
//   monitor_compaction_identity   the same differential with the
//                       authoritative log compacted at the monitor's
//                       watermark pin between delivery chunks, plus a
//                       late joiner resynced across the watermark from
//                       the retention checkpoint.
//   metamorphic_redundant_message   adding a causally redundant message
//                       never changes any verdict.
//   metamorphic_relabel relabeling processes permutes but preserves
//                       verdicts.
//   predicate_roundtrip random sync-condition ASTs render → parse →
//                       evaluate identically to direct AST evaluation.
//   clock_backend_identity   dense, tree and compressed clock backends
//                       stamp, cut and decide all relations
//                       bit-identically, at equal probe cost.
//   recovery_identity   DurableSystem/DurableMonitor crashed at a seeded
//                       point under storage faults and recovered from
//                       snapshot + WAL tail: clocks and all 32 verdicts
//                       bit-identical to an uninterrupted run.
//   schedule_invariance small universes only: enumerate every inequivalent
//                       delivery schedule (src/explore DPOR) and run the
//                       core invariant battery on each poset — fast ≡
//                       naive, schedule-driven online clocks ≡ offline,
//                       monitor ≡ offline, and verdict stability across
//                       linearizations of the same trace.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "check/case.hpp"

namespace syncon::check {

struct PropertyResult {
  bool passed = true;
  /// On failure: which relation/cut/verdict diverged, for the repro header.
  std::string message;
};

using PropertyFn = PropertyResult (*)(const CheckCase&);

struct PropertyInfo {
  std::string_view name;
  std::string_view description;
  PropertyFn fn;
};

/// All registered properties, in documentation order.
std::span<const PropertyInfo> all_properties();

/// Lookup by name; nullptr when unknown.
const PropertyInfo* find_property(std::string_view name);

/// Budget knobs of the schedule_invariance property. Cases above the size
/// gate pass vacuously (exhaustive enumeration only pays on small
/// universes); max_schedules bounds the walk on pathological fan-outs. The
/// driver's exhaustive mode raises the budget for the duration of a run —
/// within any single run the config is stable, which keeps the property a
/// pure function of the case (what shrinking soundness needs).
struct ScheduleInvarianceConfig {
  std::size_t max_processes = 4;
  std::size_t max_messages = 10;
  std::size_t max_events = 20;
  std::uint64_t max_schedules = 4096;
};

ScheduleInvarianceConfig& schedule_invariance_config();

}  // namespace syncon::check
