// The conformance subsystem's unit of work: a CheckCase is a structured,
// *shrinkable* description of one differential-testing input — an execution
// shape (per-process chain lengths + message edges) plus the two nonatomic
// events X and Y under test.
//
// Unlike an Execution (immutable, builder-validated), a CheckCase is plain
// mutable data the delta-debugging shrinker can edit along structured axes
// (drop a process, drop a message, truncate a chain, remove an X/Y member)
// and re-materialize. materialize() rebuilds a real Execution through
// ExecutionBuilder, so every candidate the shrinker proposes passes the same
// acyclicity validation the rest of the library relies on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/execution.hpp"
#include "nonatomic/interval.hpp"

namespace syncon::check {

struct CheckCase {
  /// Real events per process; events_per_process.size() is |P|.
  std::vector<EventIndex> events_per_process;
  /// Message edges (source event -> receive event). A receive event may
  /// appear as the target of several messages (gather/barrier commits).
  std::vector<Message> messages;
  /// Members of the nonatomic events under test (must stay non-empty).
  std::vector<EventId> x_members;
  std::vector<EventId> y_members;

  std::size_t process_count() const { return events_per_process.size(); }
  std::size_t total_events() const;

  /// Cheap structural screening: member/message references in range, no
  /// self-process messages, X and Y non-empty. Acyclicity is not checked
  /// here — materialize() decides it.
  bool structurally_valid() const;

  friend bool operator==(const CheckCase&, const CheckCase&) = default;
};

/// A CheckCase turned back into library objects. The Execution is held by
/// shared_ptr because the NonatomicEvents reference it by pointer.
struct MaterializedCase {
  std::shared_ptr<const Execution> exec;
  NonatomicEvent x;
  NonatomicEvent y;
};

/// Rebuilds the execution and the X/Y intervals. nullopt when the case is
/// structurally invalid or its message edges admit no topological order
/// (never the result of shrinking a valid case — edits only remove edges —
/// but load_repro input is untrusted).
std::optional<MaterializedCase> materialize(const CheckCase& c);

/// Extracts the shrinkable form of an existing execution + interval pair.
CheckCase case_from_execution(const Execution& exec,
                              const std::vector<EventId>& x_members,
                              const std::vector<EventId>& y_members);

/// Stable 64-bit digest of the case contents (FNV-1a). Properties that need
/// auxiliary randomness (fault schedules, condition ASTs, permutations)
/// seed it from the fingerprint, so a property stays a pure function of the
/// case — which is what makes shrinking sound.
std::uint64_t fingerprint(const CheckCase& c);

// ---------------------------------------------------------------------------
// Self-contained repros: '#'-comment metadata, then the standard trace_io
// trace section, then the interval section with labels X and Y. Replayable
// by `syncon_check --repro FILE` and by load_repro in tests.
// ---------------------------------------------------------------------------

struct ReproMeta {
  std::string property;
  std::uint64_t case_seed = 0;
};

/// Writes the case as a self-contained repro. Requires materialize(c).
void write_repro(std::ostream& os, const CheckCase& c, const ReproMeta& meta);
std::string repro_to_string(const CheckCase& c, const ReproMeta& meta);

struct Repro {
  CheckCase c;
  ReproMeta meta;
};

/// Parses a repro produced by write_repro. Throws TraceFormatError on
/// malformed input.
Repro load_repro(std::istream& is);

}  // namespace syncon::check
