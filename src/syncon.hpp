// Umbrella header: the full public API of the syncon library.
//
// Layering (each layer only depends on the ones above it):
//   support    — contracts, RNG, stats, tables, CLI
//   model      — events, vector clocks, executions, timestamps
//   cuts       — cuts, the << relation, special cuts, global-state lattice
//   nonatomic  — nonatomic events, proxies, poset cut timestamps
//   relations  — the paper's relation evaluators and derived calculi
//   sim        — workload and scenario generators
//   monitor    — offline monitoring: traces, conditions, mutex checking
//   online     — runtime monitoring with piggybacked clocks
//   check      — property-based conformance: generators, shrinker, fuzzer
#pragma once

#include "support/cli.hpp"          // IWYU pragma: export
#include "support/contracts.hpp"    // IWYU pragma: export
#include "support/rng.hpp"          // IWYU pragma: export
#include "support/stats.hpp"        // IWYU pragma: export
#include "support/table.hpp"        // IWYU pragma: export
#include "support/thread_pool.hpp"  // IWYU pragma: export

#include "model/clock.hpp"            // IWYU pragma: export
#include "model/compressed_clock.hpp" // IWYU pragma: export
#include "model/execution.hpp"     // IWYU pragma: export
#include "model/reachability.hpp"  // IWYU pragma: export
#include "model/scalar_clock.hpp"  // IWYU pragma: export
#include "model/timestamps.hpp"    // IWYU pragma: export
#include "model/tree_clock.hpp"    // IWYU pragma: export
#include "model/types.hpp"         // IWYU pragma: export
#include "model/vector_clock.hpp"  // IWYU pragma: export

#include "cuts/cut.hpp"            // IWYU pragma: export
#include "cuts/global_states.hpp"  // IWYU pragma: export
#include "cuts/ll_relation.hpp"    // IWYU pragma: export
#include "cuts/special_cuts.hpp"   // IWYU pragma: export

#include "nonatomic/cut_timestamps.hpp"  // IWYU pragma: export
#include "nonatomic/interval.hpp"        // IWYU pragma: export

#include "relations/batch.hpp"              // IWYU pragma: export
#include "relations/composition.hpp"        // IWYU pragma: export
#include "relations/evaluator.hpp"          // IWYU pragma: export
#include "relations/fast.hpp"               // IWYU pragma: export
#include "relations/hierarchy.hpp"          // IWYU pragma: export
#include "relations/inference.hpp"          // IWYU pragma: export
#include "relations/interaction_types.hpp"  // IWYU pragma: export
#include "relations/naive.hpp"              // IWYU pragma: export
#include "relations/relation.hpp"           // IWYU pragma: export
#include "relations/sparse_cuts.hpp"        // IWYU pragma: export

#include "sim/des.hpp"              // IWYU pragma: export
#include "sim/interval_picker.hpp"  // IWYU pragma: export
#include "sim/metrics.hpp"          // IWYU pragma: export
#include "sim/scenarios.hpp"        // IWYU pragma: export
#include "sim/workload.hpp"         // IWYU pragma: export

#include "monitor/global_condition.hpp"  // IWYU pragma: export
#include "monitor/monitor.hpp"        // IWYU pragma: export
#include "monitor/mutex_checker.hpp"  // IWYU pragma: export
#include "monitor/predicate.hpp"      // IWYU pragma: export
#include "monitor/report.hpp"         // IWYU pragma: export
#include "monitor/trace_io.hpp"       // IWYU pragma: export

#include "online/interval_tracker.hpp"  // IWYU pragma: export
#include "online/online_evaluator.hpp"  // IWYU pragma: export
#include "online/online_monitor.hpp"   // IWYU pragma: export
#include "online/online_system.hpp"    // IWYU pragma: export
#include "online/wire_codec.hpp"       // IWYU pragma: export

#include "timing/physical_time.hpp"       // IWYU pragma: export
#include "timing/timing_constraints.hpp"  // IWYU pragma: export

#include "check/case.hpp"        // IWYU pragma: export
#include "check/driver.hpp"      // IWYU pragma: export
#include "check/generators.hpp"  // IWYU pragma: export
#include "check/properties.hpp"  // IWYU pragma: export
#include "check/shrink.hpp"      // IWYU pragma: export
