// Air-defence control — the real-time application of the paper's reference
// [11]. Radars detect, a track processor fuses, a command post authorizes,
// batteries engage; the monitor then verifies the timing doctrine of every
// engagement round as synchronization conditions over nonatomic events.
//
// Run: ./air_defense [--radars=N] [--batteries=N] [--rounds=N] [--seed=N]
#include <cstdio>

#include "monitor/global_condition.hpp"
#include "monitor/monitor.hpp"
#include "sim/air_defense_des.hpp"
#include "sim/scenarios.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "timing/timing_constraints.hpp"

using namespace syncon;

namespace {

// With --des, the trace comes from the discrete-event engine (radar scan
// timers, processing delays, sampled network latencies) instead of the
// structural generator, and carries a genuine timeline.
int run_des_mode(std::size_t radars, std::size_t batteries,
                 std::size_t rounds, std::uint64_t seed, double loss) {
  AirDefenseDesConfig cfg;
  cfg.radars = radars;
  cfg.batteries = batteries;
  cfg.rounds = rounds;
  cfg.network.seed = seed;
  cfg.network.loss_probability = loss;
  const DesEngine::Result r = make_air_defense_des(cfg);
  std::printf("DES mode: %zu events over %lld µs of simulated time%s\n\n",
              r.execution->total_real_count(),
              static_cast<long long>(r.times->horizon()),
              loss > 0 ? " (lossy network)" : "");

  SyncMonitor monitor(r.execution);
  for (const NonatomicEvent& iv : r.intervals) monitor.add_interval(iv);
  monitor.attach_times(r.times);

  TextTable table({"round", "completed", "detect<engage",
                   "response (µs)", "within 60ms"});
  const TimingConstraint response{"resp", Anchor::Start, Anchor::End, 0,
                                  60'000};
  bool all_ok = true;
  for (std::size_t k = 0; k < rounds; ++k) {
    const std::string suffix = "/" + std::to_string(k);
    const auto detect = monitor.find("detect" + suffix);
    const auto engage = monitor.find("engage" + suffix);
    if (!detect || !engage) {
      table.new_row()
          .add_cell(std::to_string(k))
          .add_cell(false)
          .add_cell(std::string("-"))
          .add_cell(std::string("-"))
          .add_cell(std::string("-"));
      all_ok = false;
      continue;
    }
    const bool ordered = monitor.check("R1(U,L)", "detect" + suffix,
                                       "engage" + suffix);
    const auto timing =
        monitor.check_deadline(response, "detect" + suffix, "engage" + suffix);
    all_ok = all_ok && ordered && timing.satisfied;
    table.new_row()
        .add_cell(std::to_string(k))
        .add_cell(true)
        .add_cell(ordered)
        .add_cell(static_cast<std::int64_t>(timing.measured_gap))
        .add_cell(timing.satisfied);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("doctrine %s on this simulated run.\n",
              all_ok ? "HOLDS" : "IS VIOLATED (lost rounds or deadline)");
  return all_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("air_defense",
                "verify engagement doctrine on a simulated air-defence run");
  cli.add_option("radars", "3", "number of radar processes");
  cli.add_option("batteries", "2", "number of battery processes");
  cli.add_option("rounds", "4", "number of engagement rounds");
  cli.add_option("seed", "42", "simulation seed");
  cli.add_flag("des", "use the discrete-event engine (true timeline)");
  cli.add_option("loss", "0.0", "message loss probability (with --des)");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_flag("des")) {
    return run_des_mode(cli.get_uint("radars"), cli.get_uint("batteries"),
                        cli.get_uint("rounds"), cli.get_uint("seed"),
                        cli.get_double("loss"));
  }

  AirDefenseConfig cfg;
  cfg.radars = cli.get_uint("radars");
  cfg.batteries = cli.get_uint("batteries");
  cfg.rounds = cli.get_uint("rounds");
  cfg.seed = cli.get_uint("seed");

  const Scenario scenario = make_air_defense(cfg);
  std::printf("scenario '%s': %zu processes, %zu events, %zu intervals\n\n",
              scenario.name().c_str(), scenario.execution().process_count(),
              scenario.execution().total_real_count(),
              scenario.intervals().size());

  SyncMonitor monitor(scenario.execution_ptr());
  for (const NonatomicEvent& iv : scenario.intervals()) {
    monitor.add_interval(iv);
  }

  // The engagement doctrine, stated as synchronization conditions:
  //  D1: detection completes before any engagement starts   R1(U,L)
  //  D2: command decides before every battery fires          R1(U,L)
  //  D3: no battery engages before its round's track fusion  !R4 reversed
  const SyncCondition d1 = SyncCondition::parse("R1(U,L)");
  const SyncCondition d3 = SyncCondition::parse("R4(L,U)");

  TextTable table({"round", "detect<engage", "decide<engage",
                   "engage-before-track?", "verdict"});
  bool all_ok = true;
  for (std::size_t k = 0; k < cfg.rounds; ++k) {
    const std::string suffix = "/" + std::to_string(k);
    const auto detect = monitor.handle("detect" + suffix);
    const auto track = monitor.handle("track" + suffix);
    const auto decide = monitor.handle("decide" + suffix);
    const auto engage = monitor.handle("engage" + suffix);
    const bool c1 = monitor.check(d1, detect, engage);
    const bool c2 = monitor.check(d1, decide, engage);
    const bool c3 = monitor.check(d3, engage, track);  // must be false
    const bool ok = c1 && c2 && !c3;
    all_ok = all_ok && ok;
    table.new_row()
        .add_cell(std::to_string(k))
        .add_cell(c1)
        .add_cell(c2)
        .add_cell(c3)
        .add_cell(std::string(ok ? "OK" : "VIOLATED"));
  }
  std::printf("%s\n", table.to_string().c_str());

  // Cross-round pipelining: consecutive detection waves need not be ordered
  // (radars keep scanning), but decisions serialize through the command post.
  std::printf("cross-round structure:\n");
  for (std::size_t k = 0; k + 1 < cfg.rounds; ++k) {
    const std::string a = "decide/" + std::to_string(k);
    const std::string b = "decide/" + std::to_string(k + 1);
    std::printf("  %s fully-before %s : %s\n", a.c_str(), b.c_str(),
                monitor.check("R1(U,L)", a, b) ? "yes" : "no");
  }

  // The same doctrine as ONE multi-interval specification (GlobalCondition):
  // readable, storable, and checked in a single call.
  std::string spec;
  for (std::size_t k = 0; k < cfg.rounds; ++k) {
    const std::string r = std::to_string(k);
    if (!spec.empty()) spec += " & ";
    spec += "R1[U,L](detect/" + r + ", engage/" + r + ") & !R4[L,U](engage/" +
            r + ", detect/" + r + ")";
  }
  const GlobalCondition doctrine = GlobalCondition::parse(spec);
  std::printf("single-specification doctrine over %zu intervals: %s\n\n",
              doctrine.labels().size(),
              doctrine.evaluate(monitor) ? "HOLDS" : "VIOLATED");

  // Quantitative layer: detect→engage response time per round against a
  // 50ms deadline (synthetic wall clock drawn over the causal structure).
  TimingModel model;
  model.mean_step = 800;      // µs of local processing between events
  model.min_latency = 300;    // network latency window
  model.max_latency = 4000;
  model.seed = cfg.seed;
  const PhysicalTimes times = assign_times(scenario.execution(), model);
  LatencyProfile response(TimingConstraint{
      "detect→engage", Anchor::Start, Anchor::End, 0, 50'000});
  TextTable timing({"round", "detect start (µs)", "engage end (µs)",
                    "response (µs)", "within 50ms"});
  for (std::size_t k = 0; k < cfg.rounds; ++k) {
    const NonatomicEvent& d = scenario.interval("detect/" + std::to_string(k));
    const NonatomicEvent& e = scenario.interval("engage/" + std::to_string(k));
    const auto result = check_constraint(times, response.constraint(), d, e);
    response.record(times, d, e);
    timing.new_row()
        .add_cell(std::to_string(k))
        .add_cell(static_cast<std::int64_t>(start_time(times, d)))
        .add_cell(static_cast<std::int64_t>(end_time(times, e)))
        .add_cell(static_cast<std::int64_t>(result.measured_gap))
        .add_cell(result.satisfied);
  }
  std::printf("\nresponse-time analysis (synthetic wall clock):\n%s",
              timing.to_string().c_str());
  std::printf("p50 = %.0f µs, worst = %lld µs, violations = %zu/%zu\n",
              response.quantile(0.5),
              static_cast<long long>(response.worst_gap()),
              response.violations(), response.samples());

  std::printf("\ndoctrine %s on this trace.\n",
              all_ok ? "HOLDS" : "IS VIOLATED");
  return all_ok ? 0 : 2;
}
