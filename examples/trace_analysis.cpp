// Offline trace analysis tool: generate (or load) a trace and an interval
// set, then answer synchronization queries from the command line — the
// workflow of the paper's Problem 4.
//
// Examples:
//   # generate a trace + windowed intervals, list all fully-ordered pairs
//   ./trace_analysis --generate --processes=6 --events=30 --find="R1(U,L)"
//   # save them for later analysis
//   ./trace_analysis --generate --save-trace=t.trace --save-intervals=i.txt
//   # reload and query a specific pair
//   ./trace_analysis --trace=t.trace --intervals=i.txt --x=W0 --y=W2 \
//       --condition="R1(U,L) & !R3'"
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "cuts/watermark.hpp"
#include "monitor/monitor.hpp"
#include "monitor/report.hpp"
#include "obs/causal_trace.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "relations/interaction_types.hpp"
#include "monitor/trace_io.hpp"
#include "online/online_monitor.hpp"
#include "online/online_system.hpp"
#include "sim/interval_picker.hpp"
#include "sim/workload.hpp"
#include "store/durable.hpp"
#include "store/storage.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace syncon;

namespace {

/// Drives the execution through a DurableSystem so every event is journaled
/// into `storage` (DESIGN.md §3.12); with compact_every > 0 the log is also
/// compacted at the retention watermark, exercising snapshot + WAL pruning.
void drive_durable(const Execution& exec, DurableSystem& sys,
                   std::size_t compact_every) {
  std::unordered_map<EventId, bool> is_source;
  for (const Message& m : exec.messages()) is_source[m.source] = true;
  std::size_t steps = 0;
  for (const EventId& e : exec.topological_order()) {
    if (e.index <= sys.system().executed(e.process)) continue;  // recovered
    const auto incoming = exec.incoming(e);
    if (!incoming.empty()) {
      std::vector<WireMessage> msgs;
      msgs.reserve(incoming.size());
      for (const EventId& src : incoming) {
        msgs.push_back(sys.system().wire_of(src));
      }
      sys.deliver_all(e.process, msgs);
    } else if (is_source.count(e)) {
      sys.send(e.process);
    } else {
      sys.local(e.process);
    }
    if (compact_every > 0 && ++steps % compact_every == 0) {
      sys.compact(sys.system().retention_watermark());
    }
  }
  sys.sync();
}

/// Compares the recovered system against a clean in-memory replay of the
/// same trace; returns the number of divergent processes/events.
std::size_t diff_against_replay(const Execution& exec,
                                const OnlineSystem& recovered) {
  const OnlineSystem oracle = replay(exec);
  std::size_t mismatches = 0;
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    if (recovered.executed(p) != oracle.executed(p) ||
        recovered.current_clock(p) != oracle.current_clock(p)) {
      ++mismatches;
      continue;
    }
    for (EventIndex i = recovered.reclaimed_before(p) + 1;
         i <= recovered.executed(p); ++i) {
      const EventId e{p, i};
      if (recovered.clock_of(e) != oracle.clock_of(e) ||
          recovered.time_of(e) != oracle.time_of(e)) {
        ++mismatches;
      }
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("trace_analysis",
                "query causality relations on recorded distributed traces");
  cli.add_flag("generate", "generate a synthetic trace instead of loading");
  cli.add_option("processes", "6", "processes (with --generate)");
  cli.add_option("events", "30", "events per process (with --generate)");
  cli.add_option("topology", "random",
                 "random|ring|client-server|broadcast|phases");
  cli.add_option("seed", "1", "generation seed");
  cli.add_option("window", "8", "interval window width (with --generate)");
  cli.add_option("trace", "", "trace file to load");
  cli.add_option("intervals", "", "interval file to load");
  cli.add_option("save-trace", "", "write the trace to this file");
  cli.add_option("save-intervals", "", "write the intervals to this file");
  cli.add_option("x", "", "label of X for a single query");
  cli.add_option("y", "", "label of Y for a single query");
  cli.add_option("condition", "R1(U,L)", "synchronization condition");
  cli.add_option("find", "", "list all ordered pairs satisfying condition");
  cli.add_flag("matrix", "print the interaction-type matrix of all intervals");
  cli.add_option("online-compact", "0",
                 "replay the trace through the online stack, compacting the "
                 "log at the watermark every N events (0 = off)");
  cli.add_option("wal-record", "",
                 "journal the trace through a crash-recoverable "
                 "DurableSystem into a WAL + snapshots in this directory");
  cli.add_option("wal-replay", "",
                 "recover a DurableSystem from the WAL directory and verify "
                 "it against a clean replay of the loaded trace");
  cli.add_option("wal-compact", "0",
                 "with --wal-record: compact at the watermark every N "
                 "events, pruning covered WAL segments (0 = off)");
  cli.add_option("dot", "", "write a Graphviz rendering to this file");
  cli.add_flag("report", "print the full analysis report");
  cli.add_option("chrome-trace", "",
                 "enable telemetry; write the span trace here as Chrome "
                 "trace-event JSON (open in Perfetto / chrome://tracing)");
  cli.add_option("metrics", "",
                 "enable telemetry; write Prometheus text metrics here");
  cli.add_option("causal-trace", "",
                 "map the execution into a causal span trace (process / "
                 "event / message / interval spans with happens-before "
                 "follows-from links), property-check it against the clock "
                 "order, and write OTLP-style JSON here");
  cli.add_option("causal-chrome", "",
                 "also write the causal span trace as Chrome trace-event "
                 "JSON (happens-before rendered as flow arrows)");
  cli.add_option("flight", "",
                 "enable the flight recorder for the run and write its "
                 "text dump here (WAL / compaction / recovery records)");
  if (!cli.parse(argc, argv)) return 1;

  const bool telemetry =
      !cli.get("chrome-trace").empty() || !cli.get("metrics").empty();
  if (telemetry) obs::set_enabled(true);
  const bool flight_dump = !cli.get("flight").empty();
  if (flight_dump) obs::set_flight_enabled(true);

  // --- obtain the execution -------------------------------------------------
  std::shared_ptr<const Execution> exec;
  std::vector<NonatomicEvent> intervals;
  if (cli.get_flag("generate")) {
    WorkloadConfig cfg;
    cfg.process_count = cli.get_uint("processes");
    cfg.events_per_process = cli.get_uint("events");
    cfg.seed = cli.get_uint("seed");
    const std::string topo = cli.get("topology");
    if (topo == "ring") cfg.topology = Topology::Ring;
    else if (topo == "client-server") cfg.topology = Topology::ClientServer;
    else if (topo == "broadcast") cfg.topology = Topology::Broadcast;
    else if (topo == "phases") cfg.topology = Topology::Phases;
    else cfg.topology = Topology::Random;
    exec = std::make_shared<const Execution>(generate_execution(cfg));
    intervals = windowed_intervals(*exec, cli.get_uint("window"));
  } else if (!cli.get("trace").empty()) {
    std::ifstream in(cli.get("trace"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", cli.get("trace").c_str());
      return 1;
    }
    exec = std::make_shared<const Execution>(read_trace(in));
    if (!cli.get("intervals").empty()) {
      std::ifstream iv(cli.get("intervals"));
      if (!iv) {
        std::fprintf(stderr, "cannot open %s\n",
                     cli.get("intervals").c_str());
        return 1;
      }
      intervals = read_intervals(iv, *exec);
    } else {
      intervals = windowed_intervals(*exec, cli.get_uint("window"));
    }
  } else {
    std::fprintf(stderr, "need --generate or --trace=<file>\n");
    return 1;
  }

  std::printf("trace: %zu processes, %zu events, %zu messages; %zu intervals\n",
              exec->process_count(), exec->total_real_count(),
              exec->messages().size(), intervals.size());

  if (!cli.get("save-trace").empty()) {
    std::ofstream out(cli.get("save-trace"));
    write_trace(out, *exec);
    std::printf("wrote trace to %s\n", cli.get("save-trace").c_str());
  }
  if (!cli.get("save-intervals").empty()) {
    std::ofstream out(cli.get("save-intervals"));
    write_intervals(out, intervals);
    std::printf("wrote intervals to %s\n",
                cli.get("save-intervals").c_str());
  }

  if (!cli.get("dot").empty()) {
    std::ofstream out(cli.get("dot"));
    write_dot(out, *exec, intervals);
    std::printf("wrote Graphviz rendering to %s\n", cli.get("dot").c_str());
  }

  // --- bounded-memory online replay (DESIGN.md §3.10) -----------------------
  if (const std::size_t compact_every = cli.get_uint("online-compact");
      compact_every > 0) {
    // Replay the trace through the online stack with a feed-only monitor as
    // the retention consumer: every event report is observed, so the
    // monitor's watermark pin advances with the replay and the log can be
    // compacted behind it — the archival trace stays bounded in memory no
    // matter how long it is.
    OnlineSystem online(exec->process_count());
    OnlineMonitor feed(exec->process_count());
    std::unordered_map<EventId, bool> is_source;
    for (const Message& m : exec->messages()) is_source[m.source] = true;
    std::unordered_map<EventId, WireMessage> wires;
    std::size_t steps = 0, compactions = 0, live_peak = 0;
    for (const EventId& e : exec->topological_order()) {
      const auto incoming = exec->incoming(e);
      WireMessage report;
      if (!incoming.empty()) {
        std::vector<WireMessage> msgs;
        msgs.reserve(incoming.size());
        for (const EventId& src : incoming) msgs.push_back(wires.at(src));
        report = online.wire_of(online.deliver_all(e.process, msgs));
      } else if (is_source.count(e)) {
        report = online.send(e.process);
      } else {
        report = online.wire_of(online.local(e.process));
      }
      if (is_source.count(e)) wires.emplace(e, report);
      feed.observe(report);
      live_peak = std::max(live_peak, online.live_log_events());
      if (++steps % compact_every == 0) {
        const VectorClock pins[] = {feed.watermark_pin()};
        if (online.compact(low_watermark(pins)) > 0) ++compactions;
      }
    }
    std::printf(
        "\nonline replay with compaction every %zu events:\n"
        "  events %zu, compactions %zu, reclaimed %llu,\n"
        "  live log peak %zu, final %zu, watermark lag %llu\n",
        compact_every, steps, compactions,
        static_cast<unsigned long long>(online.reclaimed_events()), live_peak,
        online.live_log_events(),
        static_cast<unsigned long long>(
            watermark_lag(online.checkpoint().cut, online.snapshot())));
  }

  // --- durable journaling + crash recovery (DESIGN.md §3.12) ----------------
  if (!cli.get("wal-record").empty()) {
    FileStorage storage(cli.get("wal-record"));
    DurableSystem durable(exec->process_count(), storage);
    drive_durable(*exec, durable, cli.get_uint("wal-compact"));
    const Store& store = durable.store();
    std::printf(
        "\nwal-record -> %s:\n"
        "  records %llu (%llu WAL bytes, %llu fsyncs),\n"
        "  segments live %zu / pruned %llu, snapshots %llu\n",
        storage.directory().c_str(),
        static_cast<unsigned long long>(store.records_appended()),
        static_cast<unsigned long long>(store.wal_bytes_appended()),
        static_cast<unsigned long long>(store.syncs()), store.live_segments(),
        static_cast<unsigned long long>(store.segments_pruned()),
        static_cast<unsigned long long>(store.snapshots_written()));
  }

  if (!cli.get("wal-replay").empty()) {
    FileStorage storage(cli.get("wal-replay"));
    DurableSystem durable(exec->process_count(), storage);
    const RecoveryStats& stats = durable.recovery();
    const Store::RecoveryInfo& scan = durable.store().recovery();
    std::printf(
        "\nwal-replay <- %s:\n"
        "  recovered %s (snapshot %s, %zu discarded), records %zu,\n"
        "  replayed %zu / skipped %zu, truncated %s (%zu bytes, %zu "
        "segments dropped), scan %llu µs\n",
        storage.directory().c_str(), stats.recovered ? "yes" : "no",
        scan.snapshot.has_value() ? "found" : "none",
        scan.snapshots_discarded, scan.records, stats.events_replayed,
        stats.events_skipped, scan.truncated ? "yes" : "no",
        scan.truncated_bytes, scan.dropped_segments,
        static_cast<unsigned long long>(stats.recovery_micros));
    const std::size_t mismatches = diff_against_replay(*exec, durable.system());
    std::printf("  identity vs clean replay of this trace: %s\n",
                mismatches == 0
                    ? "bit-identical"
                    : (std::to_string(mismatches) + " mismatches").c_str());
  }

  SyncMonitor monitor(exec);
  // Scenario traces evaluate in parallel: all-pairs scans shard across the
  // shared pool with identical results and costs to a serial run.
  monitor.use_thread_pool(&ThreadPool::shared());
  for (const NonatomicEvent& iv : intervals) monitor.add_interval(iv);

  // --- causal trace export (DESIGN.md §3.13) --------------------------------
  if (!cli.get("causal-trace").empty() || !cli.get("causal-chrome").empty()) {
    obs::CausalTrace trace =
        obs::build_causal_trace(*exec, monitor.timestamps());
    obs::append_interval_spans(trace, *exec, intervals);
    std::string why;
    const bool consistent = obs::verify_causal_consistency(
        trace, *exec, monitor.timestamps(), &why);
    std::printf("\ncausal trace: %zu spans; happens-before consistency: %s\n",
                trace.spans.size(), consistent ? "verified" : "FAILED");
    if (!consistent) {
      std::fprintf(stderr, "causal trace inconsistency: %s\n", why.c_str());
      return 1;
    }
    if (!cli.get("causal-trace").empty()) {
      std::ofstream out(cli.get("causal-trace"));
      obs::write_causal_otlp(out, trace);
      std::printf("wrote OTLP-style causal trace to %s\n",
                  cli.get("causal-trace").c_str());
    }
    if (!cli.get("causal-chrome").empty()) {
      std::ofstream out(cli.get("causal-chrome"));
      obs::write_causal_chrome_trace(out, trace);
      std::printf("wrote Chrome causal trace to %s (open in Perfetto)\n",
                  cli.get("causal-chrome").c_str());
    }
  }

  // --- queries ---------------------------------------------------------------
  if (!cli.get("x").empty() && !cli.get("y").empty()) {
    const std::string cond_text = cli.get("condition");
    const SyncCondition cond = SyncCondition::parse(cond_text);
    const bool holds =
        monitor.check(cond, monitor.handle(cli.get("x")),
                      monitor.handle(cli.get("y")));
    std::printf("\n%s (X=%s, Y=%s) : %s\n", cond.to_string().c_str(),
                cli.get("x").c_str(), cli.get("y").c_str(),
                holds ? "HOLDS" : "does not hold");
    // Also report everything that holds (Problem 4 ii).
    std::printf("all relations holding for this pair:\n ");
    for (const RelationId& id : monitor.relations_between(
             monitor.handle(cli.get("x")), monitor.handle(cli.get("y")))) {
      std::printf(" %s", to_string(id).c_str());
    }
    std::printf("\n");
  }

  if (!cli.get("find").empty()) {
    const SyncCondition cond = SyncCondition::parse(cli.get("find"));
    const auto pairs = monitor.find_pairs(cond);
    std::printf("\npairs satisfying %s:\n", cond.to_string().c_str());
    TextTable table({"X", "Y"});
    for (const auto& [hx, hy] : pairs) {
      table.new_row()
          .add_cell(monitor.interval(hx).label())
          .add_cell(monitor.interval(hy).label());
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("%zu of %zu ordered pairs\n", pairs.size(),
                monitor.interval_count() * (monitor.interval_count() - 1));
  }

  if (cli.get_flag("matrix")) {
    const std::size_t n = monitor.interval_count();
    std::vector<std::string> headers{"X \\ Y"};
    for (std::size_t i = 0; i < n; ++i) {
      headers.push_back(monitor.interval(monitor.handle_at(i)).label());
    }
    TextTable matrix(headers);
    for (std::size_t x = 0; x < n; ++x) {
      const auto hx = monitor.handle_at(x);
      matrix.new_row().add_cell(monitor.interval(hx).label());
      const EventCuts xc(monitor.timestamps(), monitor.interval(hx));
      for (std::size_t y = 0; y < n; ++y) {
        if (x == y) {
          matrix.add_cell(std::string("·"));
          continue;
        }
        const EventCuts yc(monitor.timestamps(),
                           monitor.interval(monitor.handle_at(y)));
        ComparisonCounter counter;
        matrix.add_cell(std::string(
            to_string(classify(relation_profile(xc, yc, counter)))));
      }
    }
    std::printf("\ninteraction-type matrix:\n%s", matrix.to_string().c_str());
  }

  if (cli.get_flag("report")) {
    const SyncCondition headline = SyncCondition::parse(cli.get("condition"));
    ReportOptions report_options;
    report_options.headline = &headline;
    std::printf("\n%s", report_to_string(monitor, report_options).c_str());
  }

  const QueryCost spent = monitor.evaluator().accumulated_cost();
  std::printf("\ncost: %llu integer comparisons, %llu causality checks\n",
              static_cast<unsigned long long>(spent.integer_comparisons),
              static_cast<unsigned long long>(spent.causality_checks));

  if (telemetry) {
    obs::set_enabled(false);
    std::printf("\nspan summary:\n");
    std::ostringstream spans;
    obs::write_span_summary(spans, obs::TraceRecorder::global());
    std::printf("%s", spans.str().c_str());
    if (!cli.get("chrome-trace").empty()) {
      std::ofstream out(cli.get("chrome-trace"));
      obs::write_chrome_trace(out, obs::TraceRecorder::global());
      std::printf("wrote Chrome trace to %s (open in Perfetto)\n",
                  cli.get("chrome-trace").c_str());
    }
    if (!cli.get("metrics").empty()) {
      std::ofstream out(cli.get("metrics"));
      obs::write_prometheus(out, obs::MetricRegistry::global().snapshot());
      std::printf("wrote Prometheus metrics to %s\n",
                  cli.get("metrics").c_str());
    }
  }

  if (flight_dump) {
    obs::set_flight_enabled(false);
    std::ofstream out(cli.get("flight"));
    const std::vector<obs::FlightRecord> records =
        obs::FlightRecorder::global().dump();
    obs::write_flight_text(out, records);
    std::printf("wrote flight-recorder dump (%zu records) to %s\n",
                records.size(), cli.get("flight").c_str());
  }
  return 0;
}
