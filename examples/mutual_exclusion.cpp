// Distributed mutual exclusion verification (the use case demonstrated in
// the paper's reference [11]): critical-section occupancies recorded in a
// trace are nonatomic events; pairwise exclusion is the synchronization
// condition R1(U,L)(A,B) ∨ R1(U,L)(B,A).
//
// The example builds a token-passing mutex execution, verifies it, then
// injects a faulty occupancy (a node that enters without the token) and
// shows the checker catching the overlap.
//
// Run: ./mutual_exclusion [--processes=N] [--handovers=N]
#include <cstdio>

#include <memory>
#include <string>
#include <vector>

#include "monitor/monitor.hpp"
#include "monitor/mutex_checker.hpp"
#include "support/cli.hpp"

using namespace syncon;

namespace {

struct MutexTrace {
  std::shared_ptr<const Execution> exec;
  std::vector<NonatomicEvent> occupancies;
};

// Token-ring mutex: the token visits processes round-robin; the holder's
// critical section is {acquire/receive, work, release/send}.
MutexTrace build_token_ring(std::size_t processes, std::size_t handovers,
                            bool inject_rogue) {
  ExecutionBuilder b(processes);
  struct Pending {
    std::string label;
    std::vector<EventId> events;
  };
  std::vector<Pending> pendings;

  ProcessId holder = 0;
  // First occupancy: process 0 owns the token initially.
  EventId work0 = b.local(holder);
  EventId send_event;
  MessageToken token = b.send(holder, &send_event);
  pendings.push_back({"cs/0@p0", {work0, send_event}});

  std::vector<EventId> rogue_events;
  for (std::size_t k = 1; k <= handovers; ++k) {
    const auto next = static_cast<ProcessId>((holder + 1) % processes);
    const EventId acquire = b.receive(next, token);
    const EventId work = b.local(next);
    if (inject_rogue && k == handovers / 2) {
      // A process grabs the resource without holding the token, concurrent
      // with the legitimate holder.
      const auto rogue =
          static_cast<ProcessId>((next + 1) % processes);
      rogue_events.push_back(b.local(rogue));
      rogue_events.push_back(b.local(rogue));
    }
    EventId release;
    token = b.send(next, &release);
    pendings.push_back({"cs/" + std::to_string(k) + "@p" +
                            std::to_string(next),
                        {acquire, work, release}});
    holder = next;
  }
  // Park the token so the trace closes cleanly.
  b.receive(static_cast<ProcessId>((holder + 1) % processes), token);

  MutexTrace out;
  out.exec = std::make_shared<const Execution>(b.build());
  for (Pending& p : pendings) {
    out.occupancies.emplace_back(*out.exec, std::move(p.events),
                                 std::move(p.label));
  }
  if (!rogue_events.empty()) {
    out.occupancies.emplace_back(*out.exec, std::move(rogue_events),
                                 "cs/rogue");
  }
  return out;
}

int verify(const MutexTrace& trace, const char* title) {
  SyncMonitor monitor(trace.exec);
  std::vector<std::string> labels;
  for (const NonatomicEvent& occ : trace.occupancies) {
    monitor.add_interval(occ);
    labels.push_back(occ.label());
  }
  const MutexReport report = check_mutual_exclusion(monitor, labels);
  std::printf("%s: %zu occupancies, %zu pairs checked -> %s\n", title,
              labels.size(), report.pairs_checked,
              report.ok() ? "mutual exclusion HOLDS" : "VIOLATIONS FOUND");
  for (const MutexViolation& v : report.violations) {
    std::printf("  overlap between %s and %s\n", v.first.c_str(),
                v.second.c_str());
  }
  std::printf("  cost: %llu integer comparisons total\n\n",
              static_cast<unsigned long long>(
                  monitor.evaluator().accumulated_cost().integer_comparisons));
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("mutual_exclusion",
                "verify critical-section exclusion on token-ring traces");
  cli.add_option("processes", "4", "number of processes in the ring");
  cli.add_option("handovers", "8", "number of token handovers");
  if (!cli.parse(argc, argv)) return 1;
  const std::size_t n = cli.get_uint("processes");
  const std::size_t h = cli.get_uint("handovers");

  const int clean =
      verify(build_token_ring(n, h, /*inject_rogue=*/false), "clean trace");
  const int rogue =
      verify(build_token_ring(n, h, /*inject_rogue=*/true), "rogue trace");

  if (clean != 0) {
    std::printf("unexpected: clean trace reported a violation\n");
    return 2;
  }
  if (rogue == 0) {
    std::printf("unexpected: rogue occupancy went undetected\n");
    return 2;
  }
  std::printf("as expected: the clean trace verifies, the rogue trace is "
              "rejected.\n");
  return 0;
}
