// Fault-tolerant online monitoring over a lossy report channel
// (DESIGN.md §3.7): the application runs fault-free, but every event
// *report* shipped to the remote monitor passes through a seeded
// FaultyChannel that drops, duplicates, reorders and delays. The monitor
// folds reports in arrival order, fires watches with a Confidence flag
// while reports are known-missing, then resyncs (retransmit-request →
// serve → ingest) and converges to the exact fault-free verdicts.
//
// Run: ./lossy_monitoring [--drop=P] [--dup=P] [--seed=N]
#include <cstdio>

#include <string>
#include <vector>

#include "monitor/report.hpp"
#include "online/online_monitor.hpp"
#include "sim/faulty_channel.hpp"
#include "support/cli.hpp"

using namespace syncon;

int main(int argc, char** argv) {
  CliParser cli("lossy_monitoring",
                "degraded-mode monitoring behind a faulty report channel");
  cli.add_option("drop", "25", "report drop probability, percent");
  cli.add_option("dup", "15", "report duplication probability, percent");
  cli.add_option("seed", "42", "fault schedule seed");
  if (!cli.parse(argc, argv)) return 1;

  // The application: three workers hand work to a combiner, fault-free.
  constexpr std::size_t kProcs = 4;
  OnlineSystem sys(kProcs);
  const ProcessId combiner = 3;

  std::vector<EventId> action_a, action_b;
  std::vector<WireMessage> parts;
  for (ProcessId w = 0; w < 3; ++w) {
    action_a.push_back(sys.local(w, 100 + 10 * w));
    WireMessage part = sys.send(w, 200 + 10 * w);
    action_a.push_back(part.source);
    parts.push_back(std::move(part));
  }
  action_b.push_back(sys.deliver_all(combiner, parts, 900));
  action_b.push_back(sys.local(combiner, 1000));

  // The monitoring plane: reports reach the monitor through a faulty link.
  LinkFaultConfig link;
  link.drop_probability = static_cast<double>(cli.get_uint("drop")) / 100.0;
  link.duplicate_probability =
      static_cast<double>(cli.get_uint("dup")) / 100.0;
  link.reorder_probability = 0.3;
  link.min_delay = 10;
  link.max_delay = 500;
  FaultyChannel channel(link, cli.get_uint("seed"));

  TimePoint t = 0;
  for (const EventId& e : action_a) channel.push(sys.wire_of(e), t += 10);
  for (const EventId& e : action_b) channel.push(sys.wire_of(e), t += 10);

  OnlineMonitor remote(kProcs);  // feed-only: never reads `sys`
  remote.begin("A");
  remote.begin("B");
  remote.watch({Relation::R3, ProxyKind::Begin, ProxyKind::End}, "A", "B",
               [](const std::string& x, const std::string& y, bool holds,
                  Confidence conf) {
                 std::printf("watch R3(L[%s],U[%s]) -> %s  [%s]\n", x.c_str(),
                             y.c_str(), holds ? "HOLDS" : "no",
                             to_string(conf));
               });

  auto label_of = [&](const EventId& e) {
    return e.process == combiner ? std::string("B") : std::string("A");
  };
  for (const Arrival& a : channel.drain()) {
    remote.ingest(label_of(a.message.source), a.message,
                  sys.time_of(a.message.source));
  }
  // Tail losses are invisible until an authoritative snapshot vouches for
  // every executed event; resync pulls lost reports from the sender's log.
  const auto resync = [&] {
    remote.checkpoint(sys.snapshot());
    while (!remote.missing_reports().empty()) {
      for (const WireMessage& m : sys.serve(remote.resync_request())) {
        remote.ingest(label_of(m.source), m, sys.time_of(m.source));
      }
    }
  };
  // An action may reach its completion point with EVERY report lost; it
  // cannot be summarized from nothing, so recover before completing it.
  if (remote.recorded_events("A") == 0 || remote.recorded_events("B") == 0) {
    resync();
  }
  remote.complete("A");
  remote.complete("B");
  resync();  // close remaining gaps: pending watches re-fire Definite

  std::printf("\n%s\n", online_report_to_string(remote).c_str());
  const ChannelStats stats = channel.stats();
  std::printf("channel: offered=%llu dropped=%llu duplicated=%llu "
              "reordered=%llu\n",
              static_cast<unsigned long long>(stats.offered),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.duplicated),
              static_cast<unsigned long long>(stats.reordered));
  return 0;
}
