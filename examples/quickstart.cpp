// Quickstart: build a small distributed execution by hand, group events into
// two nonatomic events, and ask which of the paper's causality relations
// hold between them — both through the one-shot API and the caching
// RelationEvaluator.
//
// Run: ./quickstart
#include <cstdio>

#include "model/execution.hpp"
#include "model/timestamps.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/evaluator.hpp"
#include "relations/fast.hpp"
#include "support/table.hpp"

using namespace syncon;

int main() {
  // Three processes. P0 computes and sends; P1 relays; P2 consumes.
  //   p0: a1 a2 s(->p1)
  //   p1: r(<-p0) b1 s(->p2)
  //   p2: c1 r(<-p1) c2
  ExecutionBuilder builder(3);
  const EventId a1 = builder.local(0);
  const EventId a2 = builder.local(0);
  const MessageToken m0 = builder.send(0);
  const EventId r1 = builder.receive(1, m0);
  const EventId b1 = builder.local(1);
  const MessageToken m1 = builder.send(1);
  const EventId c1 = builder.local(2);
  const EventId r2 = builder.receive(2, m1);
  const EventId c2 = builder.local(2);
  const Execution exec = builder.build();

  // One-time timestamping of the trace (Defns 13/14).
  const Timestamps ts(exec);

  // X = the producer-side action, Y = the consumer-side action.
  const NonatomicEvent x(exec, {a1, a2, r1, b1}, "produce");
  const NonatomicEvent y(exec, {c1, r2, c2}, "consume");

  std::printf("execution: %zu processes, %zu events, %zu messages\n",
              exec.process_count(), exec.total_real_count(),
              exec.messages().size());
  std::printf("X = '%s' spans %zu nodes; Y = '%s' spans %zu nodes\n\n",
              x.label().c_str(), x.node_count(), y.label().c_str(),
              y.node_count());

  // Low-level API: evaluate the eight Table 1 relations directly on X, Y.
  TextTable table({"relation", "meaning", "holds", "comparisons"});
  const char* meanings[] = {
      "all X before all Y", "all Y after all X",  "each x before some y",
      "some y after all X", "some x before all Y", "each y after some x",
      "some x before some y", "some y after some x"};
  const EventCuts xc(ts, x), yc(ts, y);
  int i = 0;
  for (const Relation r : kAllRelations) {
    ComparisonCounter counter;
    const bool holds = evaluate_fast(r, xc, yc, counter);
    table.new_row()
        .add_cell(std::string(to_string(r)))
        .add_cell(std::string(meanings[i++]))
        .add_cell(holds)
        .add_cell(counter.integer_comparisons);
  }
  std::printf("Table 1 relations between X and Y (linear-time evaluation):\n");
  std::printf("%s\n", table.to_string().c_str());

  // High-level API: the 32-relation set R on proxies, with caching.
  RelationEvaluator eval(ts);
  const auto hx = eval.add_event(x);
  const auto hy = eval.add_event(y);
  const auto all = eval.all_holding_pruned(hx, hy);
  std::printf("of the 32 proxy relations, %zu hold (only %zu evaluated, "
              "rest decided by the implication lattice):\n",
              all.holding.size(), all.evaluated);
  for (const RelationId& id : all.holding) {
    std::printf("  %s\n", to_string(id).c_str());
  }
  std::printf("\ntotal integer comparisons spent: %llu\n",
              static_cast<unsigned long long>(all.cost.integer_comparisons));
  return 0;
}
