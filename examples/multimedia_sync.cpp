// Distributed multimedia synchronization: a server multicasts frame groups
// to clients; the application needs fine-grained guarantees like "the
// dispatch of group k precedes every render of group k" and "group k renders
// complete before group k+2 dispatch" (a double-buffering condition) — both
// are single relation queries on nonatomic events.
//
// Run: ./multimedia_sync [--clients=N] [--groups=N] [--seed=N]
#include <cstdio>

#include "monitor/monitor.hpp"
#include "sim/scenarios.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace syncon;

int main(int argc, char** argv) {
  CliParser cli("multimedia_sync",
                "check frame-group synchronization of a streaming session");
  cli.add_option("clients", "3", "number of stream clients");
  cli.add_option("groups", "6", "number of frame groups");
  cli.add_option("feedback", "2", "groups between client sync feedback");
  cli.add_option("seed", "11", "simulation seed");
  if (!cli.parse(argc, argv)) return 1;

  MultimediaConfig cfg;
  cfg.clients = cli.get_uint("clients");
  cfg.groups = cli.get_uint("groups");
  cfg.feedback_period = cli.get_uint("feedback");
  cfg.seed = cli.get_uint("seed");

  const Scenario scenario = make_multimedia(cfg);
  SyncMonitor monitor(scenario.execution_ptr());
  for (const NonatomicEvent& iv : scenario.intervals()) {
    monitor.add_interval(iv);
  }
  std::printf("stream: 1 server + %zu clients, %zu frame groups, %zu events\n\n",
              cfg.clients, cfg.groups,
              scenario.execution().total_real_count());

  // S1: dispatch/k fully precedes render/k (causal delivery).
  // S2: renders of group k are NOT internally ordered across clients
  //     (clients render independently): R3(L,L) on (render, render) false.
  // S3: double buffering: every render of group k precedes the dispatch of
  //     group k+F (the rate-adaptation feedback closes the loop every F
  //     groups): R1(U,U) between render/k and dispatch/k+F.
  TextTable table({"group", "S1 dispatch<render", "S2 clients independent",
                   "S3 closed-loop"});
  const std::size_t f = cfg.feedback_period == 0 ? 2 : cfg.feedback_period;
  bool all_ok = true;
  for (std::size_t g = 0; g < cfg.groups; ++g) {
    const std::string suffix = "/" + std::to_string(g);
    const auto dispatch = monitor.handle("dispatch" + suffix);
    const auto render = monitor.handle("render" + suffix);
    const bool s1 = monitor.check(SyncCondition::parse("R1(U,L)"), dispatch,
                                  render);
    const bool s2 =
        cfg.clients < 2 ||
        !monitor.check(SyncCondition::parse("R3(L,L)"), render, render);
    bool s3 = true;
    std::string s3_text = "n/a";
    // Groups with g % F == 0 end in client feedback, which the server folds
    // into the very next dispatch: every render of such a group precedes
    // dispatch/g+1.
    if (g % f == 0 && g + 1 < cfg.groups) {
      const auto later = monitor.handle("dispatch/" + std::to_string(g + 1));
      s3 = monitor.check(SyncCondition::parse("R2(U,U)"), render, later);
      s3_text = s3 ? "yes" : "NO";
    }
    all_ok = all_ok && s1 && s2 && s3;
    table.new_row()
        .add_cell(std::to_string(g))
        .add_cell(s1)
        .add_cell(s2)
        .add_cell(s3_text);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Which relations hold between consecutive render groups? (Problem 4 ii)
  std::printf("relations between render/0 and render/1:\n");
  for (const RelationId& id : monitor.relations_between(
           monitor.handle("render/0"), monitor.handle("render/1"))) {
    std::printf("  %s\n", to_string(id).c_str());
  }

  std::printf("\nsynchronization conditions %s.\n",
              all_ok ? "HOLD" : "VIOLATED");
  return all_ok ? 0 : 2;
}
