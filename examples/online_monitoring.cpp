// Online (runtime) monitoring: processes maintain vector clocks by
// piggybacking them on messages; high-level actions are tracked as their
// component events execute; registered synchronization and deadline
// watches fire the moment both actions of a pair complete — no post-hoc
// trace processing.
//
// The scenario is a two-stage processing pipeline:
//   watch 1  "stage-B batch k is entirely caused by stage-A batch k"
//            (R3'(L,U): every B event has an A cause)
//   watch 2  "some B event saw ALL of A batch k" (R2'(U,U))
//   watch 3  "batch k+1's A work never overtakes batch k's B commit"
//            (R1(U,L) between B/k and the NEXT A batch)
//   watch 4  "B/k commits within 20ms of A/k finishing" (deadline)
//
// Run: ./online_monitoring [--workers=N] [--batches=N]
#include <cstdio>

#include <string>
#include <vector>

#include "online/online_monitor.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace syncon;

int main(int argc, char** argv) {
  CliParser cli("online_monitoring",
                "check pipeline synchronization conditions at runtime");
  cli.add_option("workers", "3", "stage-A worker processes");
  cli.add_option("batches", "5", "number of pipeline batches");
  cli.add_option("deadline-us", "20000", "A→B commit deadline in µs");
  if (!cli.parse(argc, argv)) return 1;
  const std::size_t workers = cli.get_uint("workers");
  const std::size_t batches = cli.get_uint("batches");
  const auto deadline = static_cast<Duration>(cli.get_int("deadline-us"));

  OnlineSystem sys(workers + 1);
  OnlineMonitor monitor(sys);
  const auto combiner = static_cast<ProcessId>(workers);
  Xoshiro256StarStar rng(7);

  TextTable table({"watch", "pair", "verdict"});
  // Confidence is always Definite here: the monitor reads the system
  // directly, no lossy report channel is involved (see lossy_monitoring for
  // the degraded-mode counterpart).
  auto relation_cb = [&](const char* what) {
    return [&, what](const std::string& x, const std::string& y, bool holds,
                     Confidence) {
      table.new_row()
          .add_cell(std::string(what))
          .add_cell(x + " , " + y)
          .add_cell(holds);
    };
  };
  auto deadline_cb = [&](const std::string& x, const std::string& y,
                         Duration measured, bool ok, Confidence) {
    table.new_row()
        .add_cell(std::string("deadline ") + std::to_string(measured) + "µs")
        .add_cell(x + " , " + y)
        .add_cell(ok);
  };

  // Simulated wall clock, microseconds; each process drifts forward.
  std::vector<std::int64_t> now(workers + 1, 0);
  auto tick = [&](ProcessId p) {
    now[p] += 500 + static_cast<std::int64_t>(rng.below(3000));
    return now[p];
  };

  for (std::size_t k = 0; k < batches; ++k) {
    const std::string a_label = "A/" + std::to_string(k);
    const std::string b_label = "B/" + std::to_string(k);
    monitor.begin(a_label);
    monitor.begin(b_label);

    // Register the watches up front — they fire as completions happen.
    monitor.watch({Relation::R3p, ProxyKind::Begin, ProxyKind::End}, a_label,
                  b_label, relation_cb("R3'(L,U) B caused by A"));
    monitor.watch({Relation::R2p, ProxyKind::End, ProxyKind::End}, a_label,
                  b_label, relation_cb("R2'(U,U) B saw all A"));
    if (k > 0) {
      monitor.watch({Relation::R1, ProxyKind::End, ProxyKind::Begin},
                    "B/" + std::to_string(k - 1), a_label,
                    relation_cb("R1(U,L) no overtaking"));
    }
    monitor.watch_deadline(
        TimingConstraint{"commit", Anchor::End, Anchor::End, 0, deadline},
        a_label, b_label, deadline_cb);

    // Stage A: each worker produces and ships a part.
    std::vector<WireMessage> parts;
    for (ProcessId w = 0; w < workers; ++w) {
      monitor.record(a_label, sys.local(w, tick(w)));  // produce
      WireMessage part = sys.send(w, tick(w));         // ship
      monitor.record(a_label, part.source);
      parts.push_back(std::move(part));
    }
    monitor.complete(a_label);

    // Stage B: the combiner joins the parts and commits the batch. Its
    // local clock must pass the arrival times.
    std::int64_t arrival = 0;
    for (ProcessId w = 0; w < workers; ++w) {
      arrival = std::max(arrival, now[w]);
    }
    now[combiner] = std::max(now[combiner], arrival);
    monitor.record(b_label, sys.deliver_all(combiner, parts, tick(combiner)));
    monitor.record(b_label, sys.local(combiner, tick(combiner)));  // commit
    monitor.complete(b_label);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("note: the 'no overtaking' watch correctly reports NO — this "
              "pipeline has no\nflow control, so stage-A workers start batch "
              "k+1 without waiting for the\nbatch-k commit. The monitor "
              "detects the (real) property violation at runtime.\n\n");
  std::printf("events executed: %zu; comparisons across all watches: %llu\n",
              sys.total_executed(),
              static_cast<unsigned long long>(
                  monitor.counter().integer_comparisons));
  std::printf(
      "\nonline cost note: R1/R2/R3/R4 watches stay linear (|N_A| cmps) at\n"
      "runtime; R2'/R3' watches cost |N_A|·|N_B| online because the linear\n"
      "offline tests need reverse timestamps — the future of the trace\n"
      "(DESIGN.md §8, docs/THEORY.md §8).\n");
  return 0;
}
