// Industrial process control: a sensor → controller → actuator loop with
// feedback. Demonstrates (a) the interaction-type classifier on the loop's
// stages and (b) strict-vs-weak semantics and Defn-3 proxies on the same
// data — the API surface a control engineer would use to audit cycle
// timing from a trace.
//
// Run: ./process_control [--sensors=N] [--actuators=N] [--cycles=N]
#include <cstdio>

#include "nonatomic/cut_timestamps.hpp"
#include "relations/fast.hpp"
#include "relations/interaction_types.hpp"
#include "sim/scenarios.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace syncon;

int main(int argc, char** argv) {
  CliParser cli("process_control",
                "audit control-loop cycle timing from a recorded trace");
  cli.add_option("sensors", "4", "number of sensor processes");
  cli.add_option("actuators", "2", "number of actuator processes");
  cli.add_option("cycles", "5", "number of control cycles");
  cli.add_option("seed", "7", "simulation seed");
  if (!cli.parse(argc, argv)) return 1;

  ProcessControlConfig cfg;
  cfg.sensors = cli.get_uint("sensors");
  cfg.actuators = cli.get_uint("actuators");
  cfg.cycles = cli.get_uint("cycles");
  cfg.seed = cli.get_uint("seed");

  const Scenario scenario = make_process_control(cfg);
  const Timestamps ts(scenario.execution());
  std::printf("plant: %zu sensors, 1 controller, %zu actuators; %zu cycles, "
              "%zu events\n\n",
              cfg.sensors, cfg.actuators, cfg.cycles,
              scenario.execution().total_real_count());

  // Interaction matrix of cycle-0 stages with every cycle-1 stage.
  const char* stages[] = {"sample", "compute", "actuate"};
  TextTable matrix({"interaction", "sample/1", "compute/1", "actuate/1"});
  for (const char* a : stages) {
    matrix.new_row().add_cell(std::string(a) + "/0");
    const NonatomicEvent& x = scenario.interval(std::string(a) + "/0");
    const EventCuts xc(ts, x);
    for (const char* b : stages) {
      const NonatomicEvent& y = scenario.interval(std::string(b) + "/1");
      const EventCuts yc(ts, y);
      ComparisonCounter counter;
      const RelationProfile p = relation_profile(xc, yc, counter);
      matrix.add_cell(std::string(to_string(classify(p))) + "/" +
                      to_string(forward_grade(p)));
    }
  }
  std::printf("interaction types (class/forward-grade), cycle 0 vs cycle 1:\n%s\n",
              matrix.to_string().c_str());

  // Strict vs weak semantics on overlapping actions: compare compute/0
  // against itself extended with the command event — shared events make the
  // fast (weak) conditions differ from the strict definitions.
  const NonatomicEvent& compute0 = scenario.interval("compute/0");
  const EventCuts cc(ts, compute0);
  ComparisonCounter counter;
  const bool weak_self = evaluate_fast(Relation::R4, cc, cc, counter);
  std::printf("R4(compute/0, compute/0): weak(⪯) = %s — every event "
              "trivially ⪯ itself;\nstrict(≺) on the same pair would be "
              "decided by the evaluator's overlap-aware fallback.\n\n",
              weak_self ? "true" : "false");

  // Defn 3 proxies: the controller's compute stage is linearly ordered, so
  // it has global extrema; a multi-sensor sample stage does not.
  const auto compute_begin = compute0.proxy_global(ProxyKind::Begin, ts);
  const auto sample_begin =
      scenario.interval("sample/0").proxy_global(ProxyKind::Begin, ts);
  std::printf("Defn-3 global begin proxy: compute/0 %s, sample/0 %s\n",
              compute_begin ? "exists (linear action)" : "missing",
              sample_begin ? "exists" : "missing (concurrent sensors)");
  return 0;
}
