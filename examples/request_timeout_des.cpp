// Discrete-event simulation example: a client/server RPC with timeout and
// retransmission, driven through simulated time (the DES engine produces a
// trace whose causal structure and physical timeline are consistent by
// construction). The analysis then answers questions the causal relations
// are made for:
//   * was every reply caused by SOME attempt of its transaction? (R3')
//   * which transactions saw duplicated work (retry raced the original)?
//   * response-time profile against the client's deadline.
//
// Run: ./request_timeout_des [--transactions=N] [--timeout-us=N]
#include <cstdio>

#include <memory>
#include <string>
#include <vector>

#include "model/timestamps.hpp"
#include "relations/evaluator.hpp"
#include "sim/des.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "timing/timing_constraints.hpp"

using namespace syncon;

namespace {

constexpr std::uint64_t kRequestTag = 1;
constexpr std::uint64_t kReplyTag = 2;

class Client : public DesProcess {
 public:
  Client(int transactions, Duration timeout)
      : transactions_(transactions), timeout_(timeout) {}

  void on_start(DesContext& ctx) override { fire(ctx); }

  void on_message(DesContext& ctx, const DesMessage& m) override {
    if (m.tag != kReplyTag) return;
    const auto txn = static_cast<int>(m.value);
    ctx.mark("reply/" + std::to_string(txn), ctx.current_receive());
    if (txn != current_) return;  // stale reply of an already-done txn
    done_ = true;
    if (++current_ < transactions_) {
      fire(ctx);
    }
  }

  void on_timer(DesContext& ctx, std::uint64_t timer_txn) override {
    if (done_ || static_cast<int>(timer_txn) != current_) return;
    // Timeout: retransmit the current transaction.
    const EventId e =
        ctx.send(1, kRequestTag, current_, /*processing=*/50);
    ctx.mark("attempt/" + std::to_string(current_), e);
    ctx.set_timer(timeout_, static_cast<std::uint64_t>(current_));
  }

 private:
  void fire(DesContext& ctx) {
    done_ = false;
    const EventId e =
        ctx.send(1, kRequestTag, current_, /*processing=*/100);
    ctx.mark("attempt/" + std::to_string(current_), e);
    ctx.set_timer(timeout_, static_cast<std::uint64_t>(current_));
  }

  int transactions_;
  Duration timeout_;
  int current_ = 0;
  bool done_ = false;
};

class Server : public DesProcess {
 public:
  void on_message(DesContext& ctx, const DesMessage& m) override {
    if (m.tag != kRequestTag) return;
    const auto txn = static_cast<int>(m.value);
    ctx.mark("serve/" + std::to_string(txn), ctx.current_receive());
    // Every third transaction hits a slow path (cache miss / GC pause).
    const Duration work = txn % 3 == 2 ? 9'000 : 400;
    ctx.mark("serve/" + std::to_string(txn), ctx.execute(work));
    ctx.send(0, kReplyTag, txn, /*processing=*/100);
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("request_timeout_des",
                "simulate an RPC client/server with timeout retries");
  cli.add_option("transactions", "6", "number of transactions");
  cli.add_option("timeout-us", "6000", "client retransmission timeout (µs)");
  cli.add_option("seed", "5", "latency seed");
  if (!cli.parse(argc, argv)) return 1;
  const auto transactions = static_cast<int>(cli.get_int("transactions"));
  const auto timeout = static_cast<Duration>(cli.get_int("timeout-us"));

  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Client>(transactions, timeout));
  procs.push_back(std::make_unique<Server>());
  DesConfig cfg;
  cfg.min_latency = 300;
  cfg.max_latency = 2500;
  cfg.seed = cli.get_uint("seed");
  DesEngine engine(std::move(procs), cfg);
  engine.run(10'000'000);
  const DesEngine::Result result = engine.finish();

  std::printf("simulated %zu events over %lld µs of virtual time\n\n",
              result.execution->total_real_count(),
              static_cast<long long>(result.times->horizon()));

  const Timestamps ts(*result.execution);
  RelationEvaluator eval(ts);
  std::vector<std::string> labels;
  std::vector<RelationEvaluator::Handle> handles(result.intervals.size());
  auto find = [&](const std::string& label) -> int {
    for (std::size_t i = 0; i < result.intervals.size(); ++i) {
      if (result.intervals[i].label() == label) return static_cast<int>(i);
    }
    return -1;
  };
  for (std::size_t i = 0; i < result.intervals.size(); ++i) {
    handles[i] = eval.add_event(result.intervals[i]);
  }

  TextTable table({"txn", "attempts", "caused-by-attempt (R3')",
                   "duplicated work", "response (µs)", "retried"});
  LatencyProfile profile(TimingConstraint{
      "rpc", Anchor::Start, Anchor::End, 0, 4 * timeout});
  for (int t = 0; t < transactions; ++t) {
    const std::string suffix = "/" + std::to_string(t);
    const int attempt = find("attempt" + suffix);
    const int reply = find("reply" + suffix);
    const int serve = find("serve" + suffix);
    if (attempt < 0 || reply < 0 || serve < 0) continue;
    const NonatomicEvent& a = result.intervals[static_cast<std::size_t>(attempt)];
    const std::size_t attempts = a.size();
    const bool caused = eval.holds(
        {Relation::R3p, ProxyKind::Begin, ProxyKind::End},
        handles[static_cast<std::size_t>(attempt)],
        handles[static_cast<std::size_t>(reply)]);
    // Duplicated work: the server handled more than one request receive.
    const std::size_t serve_receives =
        result.intervals[static_cast<std::size_t>(serve)].size();
    const bool duplicated = serve_receives > 2;  // 1 receive + 1 work = clean
    const Duration response =
        gap(*result.times, a, Anchor::Start,
            result.intervals[static_cast<std::size_t>(reply)], Anchor::Start);
    profile.record(*result.times, a,
                   result.intervals[static_cast<std::size_t>(reply)]);
    table.new_row()
        .add_cell(std::to_string(t))
        .add_cell(attempts)
        .add_cell(caused)
        .add_cell(duplicated)
        .add_cell(static_cast<std::int64_t>(response))
        .add_cell(attempts > 1);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("response p50 = %.0f µs, worst = %lld µs; deadline (4x "
              "timeout) violations: %zu/%zu\n",
              profile.quantile(0.5),
              static_cast<long long>(profile.worst_gap()),
              profile.violations(), profile.samples());
  std::printf("\nslow transactions (every 3rd) exceed the %lld µs timeout, "
              "so the client retries\nand the trace shows duplicated server "
              "work — visible both causally and in time.\n",
              static_cast<long long>(timeout));
  (void)labels;
  return 0;
}
