#!/usr/bin/env bash
# Smoke-runs the DPOR schedule explorer (syncon_explore, DESIGN.md §3.14):
# fully enumerates the pinned 4-proc / 10-message universe with the core
# invariant battery and the naive-enumeration comparison, asserts the
# enumeration completed without violations and that DPOR measurably reduced
# the schedule count, then runs the pinned-seed 100-case
# schedule_invariance sweep and asserts zero violations. The exploration
# stats are merged into the benchmark trajectory file under
# runs.explore.stats (creating a minimal file if scripts/ci_bench_smoke.sh
# has not run yet).
#
# Usage: scripts/ci_explore_smoke.sh [sweep_cases] [merge_target.json]
#        (defaults: 100 cases, BENCH_smoke.json)
set -euo pipefail

cd "$(dirname "$0")/.."

sweep_cases="${1:-100}"
merge="${2:-BENCH_smoke.json}"
build_dir=build-bench
smoke_dir="$build_dir/smoke"

echo "=== [explore-smoke] configure ($build_dir, Release) ==="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "=== [explore-smoke] build syncon_explore ==="
cmake --build "$build_dir" -j "$(nproc)" --target syncon_explore_cli >/dev/null

mkdir -p "$smoke_dir"

echo "=== [explore-smoke] exhaustive 4-proc / 10-message universe ==="
# syncon_explore exits non-zero if any schedule violates the battery; the
# python assertions below re-check the published stats independently.
"$build_dir/tools/syncon_explore" --seed 1 --procs 4 --messages 10 \
  --invariants core --naive \
  --stats-json "$smoke_dir/explore_4p10m.stats.json" \
  | tee "$smoke_dir/explore_4p10m.log"

echo "=== [explore-smoke] pinned-seed schedule_invariance sweep ==="
"$build_dir/tools/syncon_explore" --seed 20260808 --cases "$sweep_cases" \
  | tee "$smoke_dir/explore_sweep.log"

echo "=== [explore-smoke] assert exploration stats, merge into $merge ==="
python3 - "$smoke_dir/explore_4p10m.stats.json" "$merge" <<'PY'
import json, os, sys

stats_path, merge_path = sys.argv[1], sys.argv[2]
with open(stats_path) as f:
    stats = json.load(f)

failures = []
if stats.get("violation"):
    failures.append("a schedule violated the invariant battery")
if stats.get("budget_exhausted"):
    failures.append("schedule budget exhausted: the universe was not fully "
                    "enumerated")
if stats.get("inequivalent_schedules", 0) <= 0:
    failures.append("no inequivalent schedules were visited")
if stats.get("naive_schedules", 0) <= stats.get("schedules_executed", 0):
    failures.append("naive enumeration did not exceed the DPOR schedule "
                    "count: no measured reduction")
if failures:
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    sys.exit(1)

reduction = stats["naive_schedules"] / max(stats["schedules_executed"], 1)
capped = " (naive capped)" if stats.get("naive_capped") else ""
print("exploration guarantees hold:")
print(f"  inequivalent schedules : {stats['inequivalent_schedules']}")
print(f"  schedules executed     : {stats['schedules_executed']}")
print(f"  prefixes pruned        : {stats['prefixes_pruned']}")
print(f"  DPOR reduction         : >={reduction:.1f}x{capped}")
print(f"  wall seconds           : {stats['wall_seconds']}")

if os.path.exists(merge_path):
    with open(merge_path) as f:
        doc = json.load(f)
else:
    doc = {"schema": "syncon-bench-smoke-v1", "mode": "smoke", "runs": {}}
doc.setdefault("runs", {}).setdefault("explore", {})["stats"] = stats
with open(merge_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"merged exploration stats into {merge_path}")
PY

echo "=== [explore-smoke] done ==="
