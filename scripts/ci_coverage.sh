#!/usr/bin/env bash
# Line/branch coverage of the tier-1 suite: builds the `coverage` preset
# (--coverage -O0 -g into build-coverage/), runs ctest there, then summarizes
# with gcovr when it is installed. Without gcovr the script still leaves the
# raw .gcda/.gcno data in the build tree and points at it — no extra
# dependency is ever required to run.
#
# Usage: scripts/ci_coverage.sh [gcovr-args...]
#   e.g. scripts/ci_coverage.sh --html-details coverage.html
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== [coverage] configure ==="
cmake --preset coverage >/dev/null

echo "=== [coverage] build ==="
cmake --build --preset coverage -j "$(nproc)" >/dev/null

echo "=== [coverage] test ==="
ctest --preset coverage -j "$(nproc)"

if command -v gcovr >/dev/null 2>&1; then
  echo "=== [coverage] gcovr summary (src/ only) ==="
  gcovr --root . --filter 'src/' build-coverage "$@"
else
  echo "=== [coverage] gcovr not installed ==="
  echo "Raw gcov data is in build-coverage/ (.gcda/.gcno); install gcovr or"
  echo "run gcov manually to inspect it."
fi
