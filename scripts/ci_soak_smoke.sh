#!/usr/bin/env bash
# Smoke-runs the retention soak (bench_longrun, DESIGN.md §3.10) at a short
# cycle count and asserts the retention guarantees from its telemetry
# snapshot: events were actually reclaimed, the live log plateaued instead
# of growing monotonically, the compacted faulty run's Definite verdicts
# stayed bit-identical to the clean run, and the late-joining monitor
# converged across the watermark. The snapshot is then merged into the
# benchmark trajectory file under runs.bench_longrun.telemetry (creating a
# minimal file if scripts/ci_bench_smoke.sh has not run yet).
#
# Usage: scripts/ci_soak_smoke.sh [cycles] [merge_target.json]
#        (defaults: 4000 cycles, BENCH_smoke.json)
set -euo pipefail

cd "$(dirname "$0")/.."

cycles="${1:-4000}"
merge="${2:-BENCH_smoke.json}"
build_dir=build-bench
smoke_dir="$build_dir/smoke"

echo "=== [soak-smoke] configure ($build_dir, Release) ==="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "=== [soak-smoke] build bench_longrun ==="
cmake --build "$build_dir" -j "$(nproc)" --target bench_longrun >/dev/null

mkdir -p "$smoke_dir"

echo "=== [soak-smoke] bench_longrun ($cycles cycles) ==="
# bench_longrun itself exits non-zero if any retention guarantee fails; the
# python assertions below re-check the published telemetry independently.
SYNCON_SOAK_CYCLES="$cycles" \
SYNCON_BENCH_JSON="$smoke_dir/bench_longrun.telemetry.json" \
  "$build_dir/bench/bench_longrun" | tee "$smoke_dir/bench_longrun.log"

echo "=== [soak-smoke] assert retention guarantees, merge into $merge ==="
python3 - "$smoke_dir/bench_longrun.telemetry.json" "$merge" <<'PY'
import json, os, sys

snap_path, merge_path = sys.argv[1], sys.argv[2]
with open(snap_path) as f:
    snap = json.load(f)
counters, gauges = snap.get("counters", {}), snap.get("gauges", {})

failures = []
if counters.get("syncon_online_reclaimed_events_total", 0) <= 0:
    failures.append("reclaimed-events counter stayed zero: compaction never ran")
if gauges.get("syncon_longrun_plateau_ok") != 1:
    failures.append("live log grew instead of plateauing")
if gauges.get("syncon_longrun_verdict_identity") != 1:
    failures.append("compacted faulty verdicts diverged from the clean run")
if gauges.get("syncon_longrun_late_joiner_converged") != 1:
    failures.append("late joiner failed to converge across the watermark")
if failures:
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    sys.exit(1)

print("retention guarantees hold:")
print(f"  reclaimed events : {counters['syncon_online_reclaimed_events_total']}")
print(f"  live log peak    : {gauges.get('syncon_longrun_live_log_peak')}")
print(f"  live log final   : {gauges.get('syncon_longrun_live_log_final')}")
print(f"  surface replies  : {gauges.get('syncon_longrun_surface_replies')}")

if os.path.exists(merge_path):
    with open(merge_path) as f:
        doc = json.load(f)
else:
    doc = {"schema": "syncon-bench-smoke-v1", "mode": "smoke", "runs": {}}
doc.setdefault("runs", {}).setdefault("bench_longrun", {})["telemetry"] = snap
with open(merge_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"merged telemetry into {merge_path}")
PY

echo "=== [soak-smoke] done ==="
