#!/usr/bin/env bash
# Runs the tier-1 test suite under every supported sanitizer configuration:
#   asan  — address+undefined over the full suite
#   tsan  — thread over the concurrency + fault + check + clocks + store suites
# Each preset builds into its own binary dir (build-asan / build-tsan), so
# this composes with (and never dirties) the plain `build` tree.
#
# Usage: scripts/ci_sanitizers.sh [asan|tsan ...]   (default: both)
set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$(nproc)"
}

presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(asan tsan)
fi

for p in "${presets[@]}"; do
  case "$p" in
    asan|tsan) run_preset "$p" ;;
    *) echo "unknown preset '$p' (expected asan or tsan)" >&2; exit 2 ;;
  esac
done

echo "=== all sanitizer suites passed ==="
