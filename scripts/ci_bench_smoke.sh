#!/usr/bin/env bash
# Smoke-runs the whole benchmark harness and records the perf trajectory
# baseline: builds the Release preset into build-bench/, runs every bench_*
# binary with a tiny --benchmark_min_time so the sweep finishes in minutes,
# and assembles the per-binary telemetry snapshots (written via
# SYNCON_BENCH_JSON by the instrumented benches) plus each binary's Google
# Benchmark JSON into one BENCH_smoke.json at the repo root.
#
# Usage: scripts/ci_bench_smoke.sh [output.json]   (default: BENCH_smoke.json)
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_smoke.json}"
build_dir=build-bench
smoke_dir="$build_dir/smoke"

echo "=== [bench-smoke] configure ($build_dir, Release) ==="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "=== [bench-smoke] build ==="
cmake --build "$build_dir" -j "$(nproc)" >/dev/null

mkdir -p "$smoke_dir"

for bin in "$build_dir"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "=== [bench-smoke] $name ==="
  # The instrumented benches (bench_problem4_all_pairs,
  # bench_online_monitor) honor SYNCON_BENCH_JSON and drop a telemetry
  # snapshot; the others simply ignore the variable.
  SYNCON_BENCH_JSON="$smoke_dir/$name.telemetry.json" \
    "$bin" --benchmark_min_time=0.01 \
           --benchmark_out="$smoke_dir/$name.bench.json" \
           --benchmark_out_format=json \
    > "$smoke_dir/$name.log" 2>&1 \
    || { echo "FAILED — tail of $smoke_dir/$name.log:"; tail -20 "$smoke_dir/$name.log"; exit 1; }
done

echo "=== [bench-smoke] assemble $out ==="
python3 - "$smoke_dir" "$out" <<'PY'
import json, os, sys

smoke_dir, out_path = sys.argv[1], sys.argv[2]
runs = {}
for fname in sorted(os.listdir(smoke_dir)):
    path = os.path.join(smoke_dir, fname)
    if fname.endswith(".bench.json"):
        name, kind = fname[: -len(".bench.json")], "benchmarks"
    elif fname.endswith(".telemetry.json"):
        name, kind = fname[: -len(".telemetry.json")], "telemetry"
    else:
        continue
    with open(path) as f:
        payload = json.load(f)
    if kind == "benchmarks":
        # Keep the per-benchmark rows; drop the host-specific context so the
        # trajectory file diffs cleanly across machines.
        payload = payload.get("benchmarks", [])
    runs.setdefault(name, {})[kind] = payload

# Distill the clock-backend P-sweep (bench_clock_backends) into a compact
# per-backend summary so the perf trajectory of the ClockRep backends is
# greppable without digging through the raw benchmark rows.
def clock_backend_summary(rows):
    sweep = {}
    for row in rows:
        name = row.get("name", "")
        if "BM_OnlineStampSweep" not in name or row.get("run_type") == "aggregate":
            continue
        # e.g. "BM_OnlineStampSweep<TreeClock>/1024/manual_time"
        backend = name.split("<", 1)[1].split(">", 1)[0]
        procs = name.split(">/", 1)[1].split("/", 1)[0]
        events = row.get("items_per_second")
        entry = sweep.setdefault(backend, {})
        entry[f"P={procs}"] = {
            "ns_per_event": (1e9 / events) if events else None,
            "real_time_ns": row.get("real_time"),
        }
    return sweep

summary = {}
rows = runs.get("bench_clock_backends", {}).get("benchmarks")
if rows:
    summary["clock_backend_stamp_sweep"] = clock_backend_summary(rows)

doc = {"schema": "syncon-bench-smoke-v1", "mode": "smoke", "runs": runs}
if summary:
    doc["summary"] = summary
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}: {len(runs)} benchmark binaries")
PY

echo "=== [bench-smoke] done ==="
