#!/usr/bin/env bash
# Smoke-runs the causal-observability stack (DESIGN.md §3.13) end to end:
# a seeded faulty soak through syncon_metricsd exporting every artifact,
# then asserts
#   * the causal trace is well-formed JSON whose span reachability the
#     binary itself property-checked against the clock order, and it
#     contains >0 resync spans (the injected report faults must be visible);
#   * every detection-latency waterfall is monotone and its stages sum
#     exactly to the end-to-end latency;
#   * the injected quarantine appended an automatic flight dump containing
#     the offending delivery plus preceding ring context;
# and merges the stage-latency histograms (p50/p95/p99) into the benchmark
# trajectory file under runs.syncon_metricsd.telemetry.
#
# Usage: scripts/ci_obs_smoke.sh [cycles] [merge_target.json]
#        (defaults: 600 cycles, BENCH_smoke.json)
set -euo pipefail

cd "$(dirname "$0")/.."

cycles="${1:-600}"
merge="${2:-BENCH_smoke.json}"
build_dir=build-bench
smoke_dir="$build_dir/smoke"

echo "=== [obs-smoke] configure ($build_dir, Release) ==="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "=== [obs-smoke] build syncon_metricsd ==="
cmake --build "$build_dir" -j "$(nproc)" --target syncon_metricsd >/dev/null

mkdir -p "$smoke_dir"
rm -f "$smoke_dir/obs_flight_dump.txt"

echo "=== [obs-smoke] faulty soak ($cycles cycles, seeded) ==="
# syncon_metricsd exits non-zero if verify_causal_consistency fails or the
# poisoned report is accepted; the python assertions below re-check the
# exported artifacts independently.
"$build_dir/tools/syncon_metricsd" \
  --cycles="$cycles" --processes=4 --seed=20260808 \
  --report-drop=0.08 --report-dup=0.03 --report-reorder=0.03 \
  --causal-trace="$smoke_dir/obs_causal.otlp.json" \
  --waterfalls="$smoke_dir/obs_waterfalls.json" \
  --flight-json="$smoke_dir/obs_flight.json" \
  --telemetry-json="$smoke_dir/obs_telemetry.json" \
  --inject-quarantine --flight-dump="$smoke_dir/obs_flight_dump.txt" \
  | tee "$smoke_dir/obs_smoke.log"

echo "=== [obs-smoke] assert artifacts, merge into $merge ==="
python3 - "$smoke_dir" "$merge" <<'PY'
import json, os, sys

smoke_dir, merge_path = sys.argv[1], sys.argv[2]
failures = []

# --- causal trace: well-formed, with resync spans ---------------------------
with open(os.path.join(smoke_dir, "obs_causal.otlp.json")) as f:
    trace = json.load(f)
spans = trace["resourceSpans"][0]["scopeSpans"][0]["spans"]
kinds = {}
for span in spans:
    for attr in span.get("attributes", []):
        if attr["key"] == "syncon.kind":
            kind = attr["value"]["stringValue"]
            kinds[kind] = kinds.get(kind, 0) + 1
if kinds.get("resync", 0) <= 0:
    failures.append("causal trace has no resync spans despite report faults")
if kinds.get("event", 0) <= 0:
    failures.append("causal trace has no event spans")
if kinds.get("verdict", 0) <= 0:
    failures.append("causal trace has no verdict spans")

# --- waterfalls: monotone, stages sum to total ------------------------------
with open(os.path.join(smoke_dir, "obs_waterfalls.json")) as f:
    falls_doc = json.load(f)
falls = falls_doc["waterfalls"]
if not falls:
    failures.append("soak produced no detection-latency waterfalls")
for i, fall in enumerate(falls):
    cursor = fall["start_us"]
    total = 0
    for stage in fall["stages"]:
        if stage["start_us"] != cursor:
            failures.append(f"waterfall {i} stage {stage['stage']} not "
                            f"contiguous at {cursor}")
            break
        cursor += stage["duration_us"]
        total += stage["duration_us"]
    else:
        if total != fall["total_us"]:
            failures.append(
                f"waterfall {i} stages sum {total} != total {fall['total_us']}")

# --- flight dump on the injected quarantine ---------------------------------
dump_path = os.path.join(smoke_dir, "obs_flight_dump.txt")
if not os.path.exists(dump_path):
    failures.append("injected quarantine produced no automatic flight dump")
else:
    with open(dump_path) as f:
        dump = f.read()
    if "quarantine" not in dump:
        failures.append("flight dump lacks the quarantine reason/record")
    if "delivery" not in dump:
        failures.append("flight dump lacks preceding delivery context")

# --- flight JSON parses -----------------------------------------------------
with open(os.path.join(smoke_dir, "obs_flight.json")) as f:
    flight = json.load(f)
if not flight.get("records"):
    failures.append("flight JSON dump is empty")

if failures:
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    sys.exit(1)

with open(os.path.join(smoke_dir, "obs_telemetry.json")) as f:
    telemetry = json.load(f)
stage_hists = {name: h for name, h in telemetry.get("histograms", {}).items()
               if name.startswith("syncon_detect_latency_")}
print("causal-observability guarantees hold:")
print(f"  spans                : {len(spans)} "
      f"({kinds.get('resync', 0)} resync, {kinds.get('verdict', 0)} verdict)")
print(f"  monotone waterfalls  : {len(falls)}")
print(f"  flight records       : {len(flight['records'])}")
for name in sorted(stage_hists):
    h = stage_hists[name]
    print(f"  {name}: count={h['count']} p99={h['p99']}")

if os.path.exists(merge_path):
    with open(merge_path) as f:
        doc = json.load(f)
else:
    doc = {"schema": "syncon-bench-smoke-v1", "mode": "smoke", "runs": {}}
doc.setdefault("runs", {}).setdefault("syncon_metricsd", {})["telemetry"] = \
    telemetry
with open(merge_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"merged stage-latency telemetry into {merge_path}")
PY

echo "=== [obs-smoke] done ==="
