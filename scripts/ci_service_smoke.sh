#!/usr/bin/env bash
# Smoke-runs the sharded multi-tenant monitoring daemon (syncon_monitord,
# DESIGN.md §3.15) at a pinned seed and asserts the service guarantees:
#
#   clean run      1k faulty tenants, binding memory budget — every
#                  tenant's daemon-side Definite verdict log bit-identical
#                  to its standalone reference, zero quarantined frames,
#                  events actually reclaimed (the live log plateaus).
#   overload run   tiny shard queues + oversized submit batches — the
#                  daemon must shed load through backpressure rejects and
#                  still converge to bit-identical verdicts.
#
# The clean run's stats (p99 ingest latency, peak RSS, reclaimed events)
# are merged into the benchmark trajectory file under runs.service
# (creating a minimal file if scripts/ci_bench_smoke.sh has not run yet).
#
# Usage: scripts/ci_service_smoke.sh [tenants] [merge_target.json]
#        (defaults: 1000 tenants, BENCH_smoke.json)
set -euo pipefail

cd "$(dirname "$0")/.."

tenants="${1:-1000}"
merge="${2:-BENCH_smoke.json}"
build_dir=build-bench
smoke_dir="$build_dir/smoke"
seed=20260808

echo "=== [service-smoke] configure ($build_dir, Release) ==="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "=== [service-smoke] build syncon_monitord ==="
cmake --build "$build_dir" -j "$(nproc)" --target syncon_monitord >/dev/null

mkdir -p "$smoke_dir"

echo "=== [service-smoke] clean run ($tenants tenants, budget 4096) ==="
# syncon_monitord exits non-zero on any per-tenant verdict divergence; the
# python assertions below re-check the stats JSON independently.
"$build_dir/tools/syncon_monitord" \
  --tenants="$tenants" --shards=8 --memory-budget=4096 --seed="$seed" \
  --report-drop=0.15 --report-dup=0.1 --report-reorder=0.2 \
  --no-serve --stats-json="$smoke_dir/service.json" \
  | tee "$smoke_dir/service.log"

echo "=== [service-smoke] overload run (queue-capacity 4, batch 32) ==="
"$build_dir/tools/syncon_monitord" \
  --tenants=200 --shards=4 --queue-capacity=4 --batch=32 --seed="$seed" \
  --report-drop=0.15 --report-dup=0.1 --report-reorder=0.2 \
  --no-serve --stats-json="$smoke_dir/service_overload.json" \
  | tee "$smoke_dir/service_overload.log"

echo "=== [service-smoke] assert service guarantees, merge into $merge ==="
python3 - "$smoke_dir/service.json" "$smoke_dir/service_overload.json" \
  "$merge" <<'PY'
import json, os, sys

clean_path, overload_path, merge_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(clean_path) as f:
    clean = json.load(f)
with open(overload_path) as f:
    overload = json.load(f)

failures = []
if clean["identity_mismatches"] != 0:
    failures.append("clean run: tenant verdicts diverged from references")
if clean["frames_quarantined"] != 0:
    failures.append("clean run: frames quarantined on an uncorrupted wire")
if clean["reclaimed_events"] <= 0:
    failures.append("clean run: memory budget never reclaimed anything")
if clean["p99_ingest_us"] <= 0:
    failures.append("clean run: ingest latency histogram is empty")
if overload["identity_mismatches"] != 0:
    failures.append("overload run: backpressure corrupted tenant verdicts")
if overload["backpressure_rejects"] <= 0:
    failures.append("overload run: tiny queues never rejected a submit")
if failures:
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    sys.exit(1)

print("service guarantees hold:")
print(f"  tenants              : {clean['tenants']}")
print(f"  events / frames      : {clean['total_events']} / {clean['total_frames']}")
print(f"  verdicts             : {clean['verdicts']} (all bit-identical)")
print(f"  live-log peak        : {clean['live_log_peak']}")
print(f"  reclaimed events     : {clean['reclaimed_events']}")
print(f"  p99 ingest latency   : {clean['p99_ingest_us']:.1f} us")
print(f"  peak RSS             : {clean['peak_rss_kib']} KiB")
print(f"  overload rejects     : {overload['backpressure_rejects']} (identity held)")

if os.path.exists(merge_path):
    with open(merge_path) as f:
        doc = json.load(f)
else:
    doc = {"schema": "syncon-bench-smoke-v1", "mode": "smoke", "runs": {}}
runs = doc.setdefault("runs", {})
if isinstance(runs, list):  # older trajectory files list run names only
    runs = doc["runs"] = {name: {} for name in runs}
runs["service"] = {"clean": clean, "overload": overload}
with open(merge_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"merged service stats into {merge_path}")
PY

echo "=== [service-smoke] done ==="
