#!/usr/bin/env bash
# Smoke-runs the differential conformance fuzzer with a fixed seed and a
# small wall-clock budget: builds the default preset (tools included), then
# lets syncon_check sweep every registered cross-layer property. A clean
# tree exits 0; any conformance failure prints a minimized replayable repro
# and exits 1. Fixed seed ⇒ the same cases on every CI run; the time budget
# only caps HOW MANY cases run, never what any case contains.
#
# Usage: scripts/ci_check_smoke.sh [seed] [minutes]   (default: 424242, 0.5)
set -euo pipefail

cd "$(dirname "$0")/.."

seed="${1:-424242}"
minutes="${2:-0.5}"
build_dir=build

echo "=== [check-smoke] configure ==="
cmake -B "$build_dir" -S . -DSYNCON_BUILD_TOOLS=ON >/dev/null

echo "=== [check-smoke] build syncon_check ==="
cmake --build "$build_dir" -j "$(nproc)" --target syncon_check_cli >/dev/null

echo "=== [check-smoke] fuzz (seed $seed, $minutes min budget) ==="
"$build_dir/tools/syncon_check" --seed "$seed" --minutes "$minutes" --cases 0

echo "=== [check-smoke] done ==="
