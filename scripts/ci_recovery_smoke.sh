#!/usr/bin/env bash
# Smoke-runs the crash/recovery sweep (bench_recovery, DESIGN.md §3.12) at
# a short iteration count with pinned seeds and asserts the durability
# guarantees from its telemetry snapshot: crashes were actually injected,
# at least one recovery found durable state (snapshot + WAL tail), the
# recovered runs stayed bit-identical to uninterrupted fault-free
# references, and the worst recovery constructor scan stayed inside the
# wall-clock budget. The snapshot is then merged into the benchmark
# trajectory file under runs.bench_recovery.telemetry (creating a minimal
# file if scripts/ci_bench_smoke.sh has not run yet).
#
# Usage: scripts/ci_recovery_smoke.sh [iters] [merge_target.json]
#        (defaults: 24 iterations, BENCH_smoke.json)
# Env:   SYNCON_RECOVERY_BUDGET_US  max allowed recovery scan, µs
#        (default 250000 — generous on purpose: CI machines are noisy;
#        the point is catching quadratic blowups, not 10% regressions)
set -euo pipefail

cd "$(dirname "$0")/.."

iters="${1:-24}"
merge="${2:-BENCH_smoke.json}"
budget_us="${SYNCON_RECOVERY_BUDGET_US:-250000}"
build_dir=build-bench
smoke_dir="$build_dir/smoke"

echo "=== [recovery-smoke] configure ($build_dir, Release) ==="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "=== [recovery-smoke] build bench_recovery ==="
cmake --build "$build_dir" -j "$(nproc)" --target bench_recovery >/dev/null

mkdir -p "$smoke_dir"

echo "=== [recovery-smoke] bench_recovery ($iters iterations) ==="
# bench_recovery itself exits non-zero if identity breaks; the python
# assertions below re-check the published telemetry independently.
SYNCON_RECOVERY_ITERS="$iters" \
SYNCON_BENCH_JSON="$smoke_dir/bench_recovery.telemetry.json" \
  "$build_dir/bench/bench_recovery" | tee "$smoke_dir/bench_recovery.log"

echo "=== [recovery-smoke] assert recovery guarantees, merge into $merge ==="
python3 - "$smoke_dir/bench_recovery.telemetry.json" "$merge" \
  "$budget_us" <<'PY'
import json, os, sys

snap_path, merge_path, budget_us = sys.argv[1], sys.argv[2], int(sys.argv[3])
with open(snap_path) as f:
    snap = json.load(f)
gauges = snap.get("gauges", {})

failures = []
if gauges.get("syncon_recovery_identity") != 1:
    failures.append("recovered run diverged from the uninterrupted reference")
if gauges.get("syncon_recovery_crashes", 0) <= 0:
    failures.append("crash counter stayed zero: the sweep never killed anything")
if gauges.get("syncon_recovery_recoveries", 0) <= 0:
    failures.append("no recovery ever found durable state (snapshot + WAL)")
micros_max = gauges.get("syncon_recovery_micros_max", 0)
if micros_max > budget_us:
    failures.append(
        f"worst recovery scan {micros_max}µs exceeds budget {budget_us}µs")
if failures:
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    sys.exit(1)

print("recovery guarantees hold:")
print(f"  runs               : {gauges.get('syncon_recovery_runs')}")
print(f"  crashes injected   : {gauges.get('syncon_recovery_crashes')}")
print(f"  durable recoveries : {gauges.get('syncon_recovery_recoveries')}")
print(f"  records replayed   : {gauges.get('syncon_recovery_events_replayed')}")
print(f"  recovery µs max    : {micros_max} (budget {budget_us})")

if os.path.exists(merge_path):
    with open(merge_path) as f:
        doc = json.load(f)
else:
    doc = {"schema": "syncon-bench-smoke-v1", "mode": "smoke", "runs": {}}
doc.setdefault("runs", {}).setdefault("bench_recovery", {})["telemetry"] = snap
with open(merge_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"merged telemetry into {merge_path}")
PY

echo "=== [recovery-smoke] done ==="
